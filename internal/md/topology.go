package md

import (
	"fmt"
	"math"
	"math/rand"
)

// WaterModel holds the TIP4P-family force-field parameters the optimizer
// varies (Figure 3.19 of the paper): the oxygen Lennard-Jones well depth and
// diameter, and the hydrogen partial charge (the M-site charge is -2*qH).
type WaterModel struct {
	// EpsilonOO is the O-O Lennard-Jones epsilon in kcal/mol.
	EpsilonOO float64
	// SigmaOO is the O-O Lennard-Jones sigma in angstrom.
	SigmaOO float64
	// QH is the hydrogen partial charge in e.
	QH float64

	// ROH is the rigid O-H bond length (angstrom).
	ROH float64
	// ThetaHOH is the rigid H-O-H angle (degrees).
	ThetaHOH float64
	// ROM is the O to M-site distance along the HOH bisector (angstrom).
	ROM float64
}

// TIP4P returns the published TIP4P parameters (Jorgensen et al. 1983),
// the benchmark model of section 3.5.
func TIP4P() WaterModel {
	return WaterModel{
		EpsilonOO: 0.1550,
		SigmaOO:   3.154,
		QH:        0.52,
		ROH:       0.9572,
		ThetaHOH:  104.52,
		ROM:       0.15,
	}
}

// QM returns the M-site charge, -2*QH (charge neutrality).
func (m WaterModel) QM() float64 { return -2 * m.QH }

// HHDist returns the rigid H-H distance implied by ROH and ThetaHOH.
func (m WaterModel) HHDist() float64 {
	return 2 * m.ROH * math.Sin(m.ThetaHOH/2*math.Pi/180)
}

// MSiteGamma returns the fraction gamma such that
// rM = rO + gamma * (midpoint(H1,H2) - rO); gamma is constant for a rigid
// geometry.
func (m WaterModel) MSiteGamma() float64 {
	dOMid := m.ROH * math.Cos(m.ThetaHOH/2*math.Pi/180)
	return m.ROM / dOMid
}

// Site indices within one molecule. Each water has three material sites
// (O, H1, H2) and one virtual site (M) carrying the negative charge.
const (
	SiteO = iota
	SiteH1
	SiteH2
	SitesPerMol // material sites per molecule
)

// System is the complete simulation state for N rigid water molecules.
type System struct {
	// Model is the current force-field parameterization.
	Model WaterModel
	// Box is the periodic cell.
	Box Box
	// N is the number of molecules.
	N int

	// Pos, Vel, Force are per-material-site state, indexed mol*3+site.
	Pos, Vel, Force []Vec3
	// MPos holds the virtual M-site positions, rebuilt from Pos each step.
	MPos []Vec3
	// Mass holds per-site masses.
	Mass []float64

	// Cutoff is the nonbonded cutoff radius (angstrom).
	Cutoff float64
	// Alpha is the damped-shifted-force Coulomb damping parameter (1/A).
	Alpha float64

	// Potential and Virial are filled by ComputeForces.
	Potential float64
	Virial    float64
}

// Config describes a water system to build.
type Config struct {
	// N is the number of molecules; it must be a perfect cube times 1 for
	// the lattice builder (8, 27, 64, 125, 216, ...).
	N int
	// Density is the target mass density in g/cm^3 (0 selects 0.997).
	Density float64
	// Model is the initial parameterization (zero value selects TIP4P).
	Model WaterModel
	// T is the initial temperature in kelvin for Maxwell-Boltzmann
	// velocities (0 selects 298).
	T float64
	// Cutoff in angstrom (0 selects min(box/2, 8.5)).
	Cutoff float64
	// Alpha is the DSF damping (0 selects 0.2).
	Alpha float64
	// Seed seeds velocity and orientation randomization.
	Seed int64
}

// NewSystem builds N water molecules on a cubic lattice at the target
// density with random orientations and Maxwell-Boltzmann velocities.
func NewSystem(cfg Config) (*System, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("md: need at least 2 molecules, got %d", cfg.N)
	}
	side := int(math.Round(math.Cbrt(float64(cfg.N))))
	if side*side*side != cfg.N {
		return nil, fmt.Errorf("md: N = %d is not a perfect cube", cfg.N)
	}
	if cfg.Density == 0 {
		cfg.Density = 0.997
	}
	if cfg.Model == (WaterModel{}) {
		cfg.Model = TIP4P()
	}
	if cfg.T == 0 {
		cfg.T = 298
	}

	// box edge from density: V = N*M/(rho*NA); with M in g/mol, rho in
	// g/cm^3, V in A^3: V = N * M / (rho * 0.60221408).
	vol := float64(cfg.N) * WaterMolarMass / (cfg.Density * 0.60221408)
	L := math.Cbrt(vol)

	s := &System{
		Model: cfg.Model,
		Box:   Box{L: L},
		N:     cfg.N,
		Pos:   make([]Vec3, cfg.N*SitesPerMol),
		Vel:   make([]Vec3, cfg.N*SitesPerMol),
		Force: make([]Vec3, cfg.N*SitesPerMol),
		MPos:  make([]Vec3, cfg.N),
		Mass:  make([]float64, cfg.N*SitesPerMol),
	}
	s.Cutoff = cfg.Cutoff
	if s.Cutoff == 0 {
		s.Cutoff = math.Min(L/2, 8.5)
	}
	if s.Cutoff > L/2 {
		return nil, fmt.Errorf("md: cutoff %.2f exceeds half box %.2f", s.Cutoff, L/2)
	}
	s.Alpha = cfg.Alpha
	if s.Alpha == 0 {
		s.Alpha = 0.2
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	spacing := L / float64(side)
	mol := 0
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			for k := 0; k < side; k++ {
				center := Vec3{
					(float64(i) + 0.5) * spacing,
					(float64(j) + 0.5) * spacing,
					(float64(k) + 0.5) * spacing,
				}
				s.placeMolecule(mol, center, rng)
				mol++
			}
		}
	}
	for m := 0; m < cfg.N; m++ {
		b := m * SitesPerMol
		s.Mass[b+SiteO] = MassO
		s.Mass[b+SiteH1] = MassH
		s.Mass[b+SiteH2] = MassH
	}
	// Random orientations on a dense lattice leave hydrogen-hydrogen
	// clashes whose Coulomb energy would flash-heat the system; a short
	// constrained steepest descent removes them before velocities exist.
	s.Minimize(60, 0.05)
	s.initVelocities(cfg.T, rng)
	s.UpdateMSites()
	return s, nil
}

// Minimize relaxes clashes by constrained steepest descent: each pass moves
// every site along its force with the largest displacement capped at maxDisp
// angstrom, then re-imposes the rigid geometry. Velocities are zeroed.
func (s *System) Minimize(steps int, maxDisp float64) {
	prev := make([]Vec3, len(s.Pos))
	for it := 0; it < steps; it++ {
		s.ComputeForces()
		fmax := 0.0
		for _, f := range s.Force {
			if n := f.Norm(); n > fmax {
				fmax = n
			}
		}
		if fmax == 0 {
			break
		}
		scale := maxDisp / fmax
		copy(prev, s.Pos)
		for i := range s.Pos {
			s.Pos[i] = s.Pos[i].Add(s.Force[i].Scale(scale))
		}
		// SHAKE restores the rigid geometry; dt only scales its velocity
		// correction, which the final zeroing discards.
		if err := s.shake(prev, 1.0); err != nil {
			copy(s.Pos, prev) // degenerate geometry: keep the previous state
			break
		}
	}
	for i := range s.Vel {
		s.Vel[i] = Vec3{}
	}
}

// placeMolecule positions one rigid water with a uniformly random
// orientation about the given oxygen position.
func (s *System) placeMolecule(mol int, oPos Vec3, rng *rand.Rand) {
	m := s.Model
	half := m.ThetaHOH / 2 * math.Pi / 180
	// Local geometry: O at origin, H's in the xz-plane.
	h1 := Vec3{m.ROH * math.Sin(half), 0, m.ROH * math.Cos(half)}
	h2 := Vec3{-m.ROH * math.Sin(half), 0, m.ROH * math.Cos(half)}

	// Random rotation: uniform axis + angle (adequate for initialization).
	axis := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}.Normalize()
	if axis.Norm() == 0 {
		axis = Vec3{0, 0, 1}
	}
	angle := rng.Float64() * 2 * math.Pi
	rot := func(v Vec3) Vec3 { return rotate(v, axis, angle) }

	b := mol * SitesPerMol
	s.Pos[b+SiteO] = oPos
	s.Pos[b+SiteH1] = oPos.Add(rot(h1))
	s.Pos[b+SiteH2] = oPos.Add(rot(h2))
}

// rotate applies Rodrigues' rotation of v around the unit axis by angle.
func rotate(v, axis Vec3, angle float64) Vec3 {
	c, sn := math.Cos(angle), math.Sin(angle)
	return v.Scale(c).
		Add(axis.Cross(v).Scale(sn)).
		Add(axis.Scale(axis.Dot(v) * (1 - c)))
}

// initVelocities draws Maxwell-Boltzmann velocities at temperature T,
// removes the center-of-mass drift, projects out the components violating
// the rigid constraints, and rescales to hit T exactly on the constrained
// degrees of freedom.
func (s *System) initVelocities(T float64, rng *rand.Rand) {
	for i := range s.Vel {
		sd := math.Sqrt(Boltzmann * T * KcalPerMolToInternal / s.Mass[i])
		s.Vel[i] = Vec3{
			sd * rng.NormFloat64(),
			sd * rng.NormFloat64(),
			sd * rng.NormFloat64(),
		}
	}
	s.RemoveDrift()
	// Project onto the constraint manifold; ignore a non-convergence here
	// since the first integration step re-imposes the constraints anyway.
	_ = s.rattleVelocities()
	s.RemoveDrift()
	if cur := s.Temperature(); cur > 0 {
		f := math.Sqrt(T / cur)
		for i := range s.Vel {
			s.Vel[i] = s.Vel[i].Scale(f)
		}
	}
}

// RemoveDrift zeroes the total momentum.
func (s *System) RemoveDrift() {
	var p Vec3
	mTot := 0.0
	for i := range s.Vel {
		p = p.Add(s.Vel[i].Scale(s.Mass[i]))
		mTot += s.Mass[i]
	}
	corr := p.Scale(1 / mTot)
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Sub(corr)
	}
}

// UpdateMSites recomputes the virtual M-site position of every molecule from
// the current material-site positions.
func (s *System) UpdateMSites() {
	gamma := s.Model.MSiteGamma()
	for m := 0; m < s.N; m++ {
		b := m * SitesPerMol
		o := s.Pos[b+SiteO]
		mid := s.Pos[b+SiteH1].Add(s.Pos[b+SiteH2]).Scale(0.5)
		s.MPos[m] = o.Add(mid.Sub(o).Scale(gamma))
	}
}

// KineticEnergy returns the total kinetic energy in kcal/mol.
func (s *System) KineticEnergy() float64 {
	ke := 0.0
	for i := range s.Vel {
		ke += 0.5 * s.Mass[i] * s.Vel[i].Norm2()
	}
	return ke / KcalPerMolToInternal
}

// DegreesOfFreedom returns the constrained degrees of freedom: 9 per
// molecule minus 3 constraints each, minus 3 for the removed COM drift.
func (s *System) DegreesOfFreedom() int { return 6*s.N - 3 }

// Temperature returns the instantaneous kinetic temperature in kelvin.
func (s *System) Temperature() float64 {
	return 2 * s.KineticEnergy() / (float64(s.DegreesOfFreedom()) * Boltzmann)
}

// TotalMomentum returns the summed momentum vector (amu*A/fs).
func (s *System) TotalMomentum() Vec3 {
	var p Vec3
	for i := range s.Vel {
		p = p.Add(s.Vel[i].Scale(s.Mass[i]))
	}
	return p
}

// COM returns the center of mass of one molecule.
func (s *System) COM(mol int) Vec3 {
	b := mol * SitesPerMol
	tot := 0.0
	var c Vec3
	for site := 0; site < SitesPerMol; site++ {
		m := s.Mass[b+site]
		c = c.Add(s.Pos[b+site].Scale(m))
		tot += m
	}
	return c.Scale(1 / tot)
}
