package md

import "testing"

func benchSystem(b *testing.B, n int) *System {
	b.Helper()
	s, err := NewSystem(Config{N: n, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkForces64(b *testing.B) {
	s := benchSystem(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ComputeForces()
	}
}

func BenchmarkForces216CellList(b *testing.B) {
	s, err := NewSystem(Config{N: 216, Seed: 1, Cutoff: 6.0})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ComputeForces()
	}
}

func BenchmarkStep64(b *testing.B) {
	s := benchSystem(b, 64)
	s.ComputeForces()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(1.0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShake(b *testing.B) {
	s := benchSystem(b, 64)
	prev := make([]Vec3, len(s.Pos))
	copy(prev, s.Pos)
	// Perturb slightly so SHAKE has work to do each iteration.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range s.Pos {
			s.Pos[j].X += 1e-4
		}
		if err := s.shake(prev, 1.0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRDFAccumulate(b *testing.B) {
	s := benchSystem(b, 64)
	rdf := NewRDF(s, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rdf.Accumulate(s, PairOO)
	}
}
