package md

// Unit-system constants (angstrom / femtosecond / amu / kcal/mol / e).
const (
	// KcalPerMolToInternal converts kcal/mol to amu*A^2/fs^2, so that
	// acceleration [A/fs^2] = force [kcal/mol/A] * KcalPerMolToInternal /
	// mass [amu].
	KcalPerMolToInternal = 4.184e-4

	// Boltzmann is kB in kcal/(mol*K).
	Boltzmann = 0.0019872041

	// CoulombConst is Coulomb's constant in kcal*A/(mol*e^2):
	// E = CoulombConst * q1*q2 / r.
	CoulombConst = 332.06371

	// PressureToAtm converts kcal/(mol*A^3) to atmospheres.
	PressureToAtm = 68568.415

	// KcalToKJ converts kcal to kJ.
	KcalToKJ = 4.184

	// A2PerFsToCm2PerS converts a diffusion coefficient from A^2/fs to
	// cm^2/s.
	A2PerFsToCm2PerS = 0.1

	// MassO and MassH are atomic masses in amu.
	MassO = 15.9994
	MassH = 1.008

	// WaterMolarMass is the molar mass of H2O in g/mol.
	WaterMolarMass = MassO + 2*MassH
)
