package md

import "math"

// chargedSite enumerates the charge-bearing sites used in the Coulomb sum:
// H1, H2 and the virtual M site.
type chargedSite struct {
	mol   int
	kind  int // SiteH1, SiteH2, or siteM
	pos   Vec3
	q     float64
	index int // material-site index for H's; -1 for M
}

const siteM = 3

// ComputeForces evaluates the TIP4P force field: O-O Lennard-Jones with a
// shifted-force cutoff plus damped shifted-force (DSF/Wolf) Coulomb between
// the charged sites of distinct molecules. It fills Force, Potential and
// Virial. Forces on the massless M site are redistributed onto O, H1, H2
// through the virtual-site projection.
//
// The virial is accumulated in the molecular form — each site-site force is
// dotted with the minimum-image separation of the two molecules' centers of
// mass rather than of the sites — which implicitly accounts for the rigid
// constraint forces, the standard treatment for rigid-molecule pressure.
func (s *System) ComputeForces() {
	for i := range s.Force {
		s.Force[i] = Vec3{}
	}
	s.Potential = 0
	s.Virial = 0
	s.UpdateMSites()

	coms := make([]Vec3, s.N)
	for m := 0; m < s.N; m++ {
		coms[m] = s.COM(m)
	}
	molVirial := func(mi, mj int, f Vec3) {
		s.Virial += f.Dot(s.Box.MinImage(coms[mi].Sub(coms[mj])))
	}

	mForce := make([]Vec3, s.N) // accumulated forces on M sites

	eps := s.Model.EpsilonOO
	sigma := s.Model.SigmaOO
	rc := s.Cutoff
	rc2 := rc * rc

	// Shifted-force LJ constants: F(rc) and U(rc).
	ljFrc, ljUrc := ljRaw(rc, eps, sigma)

	// DSF Coulomb constants.
	alpha := s.Alpha
	erfcRc := math.Erfc(alpha * rc)
	expRc := math.Exp(-alpha * alpha * rc * rc)
	twoAlphaPi := 2 * alpha / math.Sqrt(math.Pi)
	// Force magnitude shift term (per unit q1q2, times CoulombConst below):
	dsfFShift := erfcRc/rc2 + twoAlphaPi*expRc/rc
	dsfUShift := erfcRc / rc

	// O-O Lennard-Jones over molecule pairs.
	s.forEachMolPair(func(mi, mj int) {
		oi := mi*SitesPerMol + SiteO
		oj := mj*SitesPerMol + SiteO
		d := s.Box.MinImage(s.Pos[oi].Sub(s.Pos[oj]))
		r2 := d.Norm2()
		if r2 >= rc2 || r2 == 0 {
			return
		}
		r := math.Sqrt(r2)
		fmag, u := ljRaw(r, eps, sigma)
		// Shifted force: F' = F - F(rc); U' = U - U(rc) + (r - rc) F(rc).
		fsf := fmag - ljFrc
		usf := u - ljUrc + (r-rc)*ljFrc
		f := d.Scale(fsf / r)
		s.Force[oi] = s.Force[oi].Add(f)
		s.Force[oj] = s.Force[oj].Sub(f)
		s.Potential += usf
		molVirial(mi, mj, f)
	})

	// Coulomb between charged sites of distinct molecules.
	qH := s.Model.QH
	qM := s.Model.QM()
	sites := make([]chargedSite, 0, 3*s.N)
	for m := 0; m < s.N; m++ {
		b := m * SitesPerMol
		sites = append(sites,
			chargedSite{mol: m, kind: SiteH1, pos: s.Pos[b+SiteH1], q: qH, index: b + SiteH1},
			chargedSite{mol: m, kind: SiteH2, pos: s.Pos[b+SiteH2], q: qH, index: b + SiteH2},
			chargedSite{mol: m, kind: siteM, pos: s.MPos[m], q: qM, index: -1},
		)
	}
	applyForce := func(cs chargedSite, f Vec3) {
		if cs.index >= 0 {
			s.Force[cs.index] = s.Force[cs.index].Add(f)
		} else {
			mForce[cs.mol] = mForce[cs.mol].Add(f)
		}
	}
	for i := 0; i < len(sites); i++ {
		for j := i + 1; j < len(sites); j++ {
			a, b := sites[i], sites[j]
			if a.mol == b.mol {
				continue // rigid intramolecular geometry carries no force
			}
			d := s.Box.MinImage(a.pos.Sub(b.pos))
			r2 := d.Norm2()
			if r2 >= rc2 || r2 == 0 {
				continue
			}
			r := math.Sqrt(r2)
			qq := CoulombConst * a.q * b.q
			erfcR := math.Erfc(alpha * r)
			// DSF potential and force magnitude.
			u := qq * (erfcR/r - dsfUShift + dsfFShift*(r-rc))
			fmag := qq * (erfcR/r2 + twoAlphaPi*math.Exp(-alpha*alpha*r2)/r - dsfFShift)
			f := d.Scale(fmag / r)
			applyForce(a, f)
			applyForce(b, f.Scale(-1))
			s.Potential += u
			molVirial(a.mol, b.mol, f)
		}
	}

	// Redistribute M-site forces onto the material sites: for the linear
	// construction rM = (1-gamma) rO + gamma/2 (rH1 + rH2), the chain rule
	// gives FO += (1-gamma) FM, FH += gamma/2 FM.
	gamma := s.Model.MSiteGamma()
	for m := 0; m < s.N; m++ {
		fm := mForce[m]
		if fm == (Vec3{}) {
			continue
		}
		b := m * SitesPerMol
		s.Force[b+SiteO] = s.Force[b+SiteO].Add(fm.Scale(1 - gamma))
		s.Force[b+SiteH1] = s.Force[b+SiteH1].Add(fm.Scale(gamma / 2))
		s.Force[b+SiteH2] = s.Force[b+SiteH2].Add(fm.Scale(gamma / 2))
	}
}

// ljRaw returns the unshifted Lennard-Jones force magnitude (dU/dr negated)
// and potential at separation r.
func ljRaw(r, eps, sigma float64) (fmag, u float64) {
	sr := sigma / r
	sr2 := sr * sr
	sr6 := sr2 * sr2 * sr2
	sr12 := sr6 * sr6
	u = 4 * eps * (sr12 - sr6)
	fmag = 24 * eps * (2*sr12 - sr6) / r
	return fmag, u
}

// TranslationalKE returns the center-of-mass translational kinetic energy in
// kcal/mol — the kinetic contribution to the molecular pressure.
func (s *System) TranslationalKE() float64 {
	ke := 0.0
	for m := 0; m < s.N; m++ {
		b := m * SitesPerMol
		var p Vec3
		mTot := 0.0
		for site := 0; site < SitesPerMol; site++ {
			p = p.Add(s.Vel[b+site].Scale(s.Mass[b+site]))
			mTot += s.Mass[b+site]
		}
		ke += 0.5 * p.Norm2() / mTot
	}
	return ke / KcalPerMolToInternal
}

// TailCorrections returns the standard homogeneous-fluid Lennard-Jones
// long-range corrections beyond the cutoff: the total energy correction
// (kcal/mol) and the pressure correction (kcal/mol/A^3). They assume plain
// truncation, a good approximation to the shifted-force potential actually
// integrated.
func (s *System) TailCorrections() (uTail, pTail float64) {
	eps := s.Model.EpsilonOO
	sigma := s.Model.SigmaOO
	rc := s.Cutoff
	rho := float64(s.N) / s.Box.Volume()
	sr3 := sigma * sigma * sigma / (rc * rc * rc)
	sr9 := sr3 * sr3 * sr3
	sig3 := sigma * sigma * sigma
	uTail = 8 * math.Pi / 3 * float64(s.N) * rho * eps * sig3 * (sr9/3 - sr3)
	pTail = 16 * math.Pi / 3 * rho * rho * eps * sig3 * (2*sr9/3 - sr3)
	return uTail, pTail
}

// Pressure returns the instantaneous pressure in atmospheres from the
// molecular virial: P = (2 K_trans + W) / (3V) + P_tail.
func (s *System) Pressure() float64 {
	k := s.TranslationalKE()
	_, pTail := s.TailCorrections()
	return ((2*k+s.Virial)/(3*s.Box.Volume()) + pTail) * PressureToAtm
}

// forEachMolPair visits every unordered molecule pair, using a cell list
// when the box is large enough (at least 3 cells per side at the cutoff)
// and the direct O(N^2) loop otherwise.
func (s *System) forEachMolPair(visit func(mi, mj int)) {
	cells := int(s.Box.L / s.Cutoff)
	if cells < 3 {
		for i := 0; i < s.N; i++ {
			for j := i + 1; j < s.N; j++ {
				visit(i, j)
			}
		}
		return
	}
	s.cellListPairs(cells, visit)
}

// cellListPairs bins molecules by wrapped oxygen position and visits pairs in
// the same or neighbouring cells. Cell size >= cutoff guarantees coverage of
// all in-range pairs.
func (s *System) cellListPairs(cells int, visit func(mi, mj int)) {
	cellOf := func(mol int) (int, int, int) {
		p := s.Box.Wrap(s.Pos[mol*SitesPerMol+SiteO])
		w := s.Box.L / float64(cells)
		cx := int(p.X / w)
		cy := int(p.Y / w)
		cz := int(p.Z / w)
		clamp := func(c int) int {
			if c < 0 {
				return 0
			}
			if c >= cells {
				return cells - 1
			}
			return c
		}
		return clamp(cx), clamp(cy), clamp(cz)
	}
	bins := make(map[[3]int][]int, cells*cells*cells)
	for m := 0; m < s.N; m++ {
		cx, cy, cz := cellOf(m)
		key := [3]int{cx, cy, cz}
		bins[key] = append(bins[key], m)
	}
	mod := func(a int) int { return ((a % cells) + cells) % cells }
	for key, members := range bins {
		// Pairs within the cell.
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				visit(members[i], members[j])
			}
		}
		// Pairs with half the neighbouring cells (13 of 26) so each pair is
		// visited once.
		for _, off := range halfNeighbours {
			nkey := [3]int{mod(key[0] + off[0]), mod(key[1] + off[1]), mod(key[2] + off[2])}
			if nkey == key {
				continue // small cell counts can alias onto self
			}
			for _, a := range members {
				for _, b := range bins[nkey] {
					if a < b {
						visit(a, b)
					} else {
						visit(b, a)
					}
				}
			}
		}
	}
}

// halfNeighbours enumerates 13 of the 26 neighbour offsets such that every
// unordered cell pair appears exactly once.
var halfNeighbours = [][3]int{
	{1, 0, 0}, {0, 1, 0}, {0, 0, 1},
	{1, 1, 0}, {1, -1, 0}, {1, 0, 1}, {1, 0, -1},
	{0, 1, 1}, {0, 1, -1},
	{1, 1, 1}, {1, 1, -1}, {1, -1, 1}, {1, -1, -1},
}
