// Package md is a compact molecular-dynamics engine sufficient to run the
// paper's application end-to-end: rigid TIP4P water in a periodic box with
// Lennard-Jones plus damped shifted-force Coulomb interactions, SHAKE/RATTLE
// constraints, velocity-Verlet integration, a Berendsen thermostat for NVT
// equilibration, NVE production, and the observables the cost function of
// eq 3.4 needs — average potential energy, virial pressure, self-diffusion
// from mean-square displacement, and the gOO/gOH/gHH radial distribution
// functions.
//
// Internal units: angstrom (length), femtosecond (time), amu (mass),
// kcal/mol (energy), elementary charge. See units.go for the conversion
// constants.
package md

import "math"

// Vec3 is a three-component vector.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s * v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the inner product.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v x w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns the squared length.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Normalize returns v / |v|; the zero vector is returned unchanged.
func (v Vec3) Normalize() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}
