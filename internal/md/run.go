package md

import "fmt"

// RunConfig describes the two-phase simulation protocol of section 3.5: an
// NVT equilibration at the target temperature followed by an NVE production
// run from which properties are measured.
type RunConfig struct {
	// Dt is the timestep in fs (0 selects 1.0).
	Dt float64
	// EquilSteps is the NVT equilibration length.
	EquilSteps int
	// ProdSteps is the NVE production length.
	ProdSteps int
	// T is the target temperature in kelvin (0 selects 298).
	T float64
	// Tau is the Berendsen coupling time in fs (0 selects 100).
	Tau float64
	// SampleEvery sets the production sampling stride (0 selects 10).
	SampleEvery int
	// RDFBins sets the RDF resolution (0 selects 100).
	RDFBins int
}

// Properties are the measured equilibrium averages entering the cost
// function of eq 3.4.
type Properties struct {
	// EnergyKJPerMol is the average potential energy per molecule (kJ/mol).
	EnergyKJPerMol float64
	// PressureAtm is the average virial pressure (atm).
	PressureAtm float64
	// DiffusionCm2PerS is the self-diffusion coefficient (cm^2/s).
	DiffusionCm2PerS float64
	// TemperatureK is the average production temperature.
	TemperatureK float64
	// GOO, GOH, GHH are the sampled radial distribution functions.
	GOO, GOH, GHH *RDF
	// Frames is the number of production samples taken.
	Frames int
}

// Run executes the NVT equilibration + NVE production protocol and returns
// the measured properties.
func (s *System) Run(cfg RunConfig) (*Properties, error) {
	if cfg.Dt == 0 {
		cfg.Dt = 1.0
	}
	if cfg.T == 0 {
		cfg.T = 298
	}
	if cfg.Tau == 0 {
		cfg.Tau = 100
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = 10
	}
	if cfg.RDFBins == 0 {
		cfg.RDFBins = 100
	}

	s.ComputeForces()

	// Phase 1: NVT equilibration with Berendsen rescaling.
	for step := 0; step < cfg.EquilSteps; step++ {
		if err := s.Step(cfg.Dt); err != nil {
			return nil, fmt.Errorf("md: equilibration step %d: %w", step, err)
		}
		s.BerendsenRescale(cfg.T, cfg.Tau, cfg.Dt)
	}
	s.RemoveDrift()

	// Phase 2: NVE production with sampling.
	props := &Properties{
		GOO: NewRDF(s, cfg.RDFBins),
		GOH: NewRDF(s, cfg.RDFBins),
		GHH: NewRDF(s, cfg.RDFBins),
	}
	msd := NewMSD(s)
	var uSum, pSum, tSum float64
	for step := 0; step < cfg.ProdSteps; step++ {
		if err := s.Step(cfg.Dt); err != nil {
			return nil, fmt.Errorf("md: production step %d: %w", step, err)
		}
		if (step+1)%cfg.SampleEvery == 0 {
			uSum += s.Potential
			pSum += s.Pressure()
			tSum += s.Temperature()
			props.GOO.Accumulate(s, PairOO)
			props.GOH.Accumulate(s, PairOH)
			props.GHH.Accumulate(s, PairHH)
			msd.Record(s, float64(step+1)*cfg.Dt)
			props.Frames++
		}
	}
	if props.Frames > 0 {
		n := float64(props.Frames)
		uTail, _ := s.TailCorrections()
		props.EnergyKJPerMol = (uSum/n + uTail) / float64(s.N) * KcalToKJ
		props.PressureAtm = pSum / n
		props.TemperatureK = tSum / n
	}
	props.DiffusionCm2PerS = msd.Diffusion()
	return props, nil
}
