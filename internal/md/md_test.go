package md

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVec3Ops(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, 5, 6}
	if got := a.Add(b); got != (Vec3{5, 7, 9}) {
		t.Fatalf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec3{-3, -3, -3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Dot(b); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
	if got := a.Cross(b); got != (Vec3{-3, 6, -3}) {
		t.Fatalf("Cross = %v", got)
	}
	if got := (Vec3{3, 4, 0}).Norm(); got != 5 {
		t.Fatalf("Norm = %v", got)
	}
	if got := (Vec3{0, 0, 0}).Normalize(); got != (Vec3{}) {
		t.Fatalf("Normalize(0) = %v", got)
	}
	if got := (Vec3{0, 0, 9}).Normalize(); got != (Vec3{0, 0, 1}) {
		t.Fatalf("Normalize = %v", got)
	}
}

func TestMinImageProperty(t *testing.T) {
	box := Box{L: 10}
	f := func(x, y, z float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.Abs(v) > 1e6 {
				return 1
			}
			return v
		}
		d := Vec3{clamp(x), clamp(y), clamp(z)}
		m := box.MinImage(d)
		// Each component in [-L/2, L/2), and differs from input by a
		// multiple of L.
		for _, pair := range [][2]float64{{d.X, m.X}, {d.Y, m.Y}, {d.Z, m.Z}} {
			if pair[1] < -5-1e-9 || pair[1] >= 5+1e-9 {
				return false
			}
			k := (pair[0] - pair[1]) / 10
			if math.Abs(k-math.Round(k)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWrapIntoPrimaryCell(t *testing.T) {
	box := Box{L: 5}
	p := box.Wrap(Vec3{-1, 6, 12.5})
	want := Vec3{4, 1, 2.5}
	if p.Sub(want).Norm() > 1e-12 {
		t.Fatalf("Wrap = %v, want %v", p, want)
	}
}

func TestTIP4PGeometry(t *testing.T) {
	m := TIP4P()
	if m.QM() != -1.04 {
		t.Fatalf("QM = %v", m.QM())
	}
	// HH distance: 2*0.9572*sin(52.26 deg) = 1.5139 A
	if hh := m.HHDist(); math.Abs(hh-1.5139) > 1e-3 {
		t.Fatalf("HHDist = %v", hh)
	}
	// gamma = 0.15 / (0.9572*cos(52.26 deg)) = 0.2560
	if g := m.MSiteGamma(); math.Abs(g-0.2560) > 1e-3 {
		t.Fatalf("MSiteGamma = %v", g)
	}
}

func buildSystem(t *testing.T, n int, seed int64) *System {
	t.Helper()
	s, err := NewSystem(Config{N: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(Config{N: 10}); err == nil {
		t.Fatal("non-cube N accepted")
	}
	if _, err := NewSystem(Config{N: 1}); err == nil {
		t.Fatal("N=1 accepted")
	}
	if _, err := NewSystem(Config{N: 8, Cutoff: 100}); err == nil {
		t.Fatal("cutoff beyond half box accepted")
	}
}

func TestInitialGeometrySatisfiesConstraints(t *testing.T) {
	s := buildSystem(t, 27, 1)
	if v := s.MaxConstraintViolation(); v > 1e-9 {
		t.Fatalf("initial constraint violation %v", v)
	}
}

func TestInitialMomentumZero(t *testing.T) {
	s := buildSystem(t, 27, 2)
	if p := s.TotalMomentum().Norm(); p > 1e-10 {
		t.Fatalf("initial momentum %v", p)
	}
}

func TestDensityGivesExpectedBox(t *testing.T) {
	s := buildSystem(t, 64, 3)
	// V = 64*18.0154/(0.997*0.60221408) => L ~ 12.42 A
	if math.Abs(s.Box.L-12.42) > 0.05 {
		t.Fatalf("box edge %v, want ~12.42", s.Box.L)
	}
}

func TestMSitePosition(t *testing.T) {
	s := buildSystem(t, 8, 4)
	s.UpdateMSites()
	m := s.Model
	for mol := 0; mol < s.N; mol++ {
		b := mol * SitesPerMol
		d := s.MPos[mol].Sub(s.Pos[b+SiteO]).Norm()
		if math.Abs(d-m.ROM) > 1e-9 {
			t.Fatalf("mol %d: |OM| = %v, want %v", mol, d, m.ROM)
		}
		// M lies on the HOH bisector: collinear with O->midpoint.
		mid := s.Pos[b+SiteH1].Add(s.Pos[b+SiteH2]).Scale(0.5)
		om := s.MPos[mol].Sub(s.Pos[b+SiteO]).Normalize()
		omid := mid.Sub(s.Pos[b+SiteO]).Normalize()
		if om.Sub(omid).Norm() > 1e-9 {
			t.Fatalf("mol %d: M off the bisector", mol)
		}
	}
}

// Newton's third law: the total force over all material sites must vanish
// (shifted-force interactions are strictly pairwise).
func TestForcesSumToZero(t *testing.T) {
	s := buildSystem(t, 27, 5)
	s.ComputeForces()
	var sum Vec3
	for _, f := range s.Force {
		sum = sum.Add(f)
	}
	if sum.Norm() > 1e-8 {
		t.Fatalf("net force %v", sum)
	}
}

// The analytical forces must match the numerical gradient of the potential,
// including the M-site redistribution chain rule.
func TestForceMatchesNumericalGradient(t *testing.T) {
	s := buildSystem(t, 8, 6)
	s.ComputeForces()
	analytic := make([]Vec3, len(s.Force))
	copy(analytic, s.Force)

	const h = 1e-5
	perturb := func(i int, dim int, delta float64) float64 {
		switch dim {
		case 0:
			s.Pos[i].X += delta
		case 1:
			s.Pos[i].Y += delta
		case 2:
			s.Pos[i].Z += delta
		}
		s.ComputeForces()
		u := s.Potential
		switch dim {
		case 0:
			s.Pos[i].X -= delta
		case 1:
			s.Pos[i].Y -= delta
		case 2:
			s.Pos[i].Z -= delta
		}
		return u
	}
	// Spot-check a handful of site/dimension combinations.
	for _, i := range []int{0, 1, 2, 5, 10, 17} {
		for dim := 0; dim < 3; dim++ {
			up := perturb(i, dim, h)
			dn := perturb(i, dim, -h)
			numeric := -(up - dn) / (2 * h)
			var got float64
			switch dim {
			case 0:
				got = analytic[i].X
			case 1:
				got = analytic[i].Y
			case 2:
				got = analytic[i].Z
			}
			scale := math.Max(1, math.Abs(numeric))
			if math.Abs(got-numeric)/scale > 2e-4 {
				t.Fatalf("site %d dim %d: analytic %v vs numeric %v", i, dim, got, numeric)
			}
		}
	}
}

func TestLJRawKnownValues(t *testing.T) {
	// At r = sigma, U = 0; at r = 2^(1/6) sigma, F = 0 and U = -eps.
	const eps, sigma = 0.5, 3.0
	if _, u := ljRaw(sigma, eps, sigma); math.Abs(u) > 1e-12 {
		t.Fatalf("U(sigma) = %v", u)
	}
	rmin := math.Pow(2, 1.0/6.0) * sigma
	f, u := ljRaw(rmin, eps, sigma)
	if math.Abs(f) > 1e-12 {
		t.Fatalf("F(rmin) = %v", f)
	}
	if math.Abs(u+eps) > 1e-12 {
		t.Fatalf("U(rmin) = %v, want %v", u, -eps)
	}
}

func TestShakePreservesConstraintsUnderIntegration(t *testing.T) {
	s := buildSystem(t, 27, 7)
	s.ComputeForces()
	for step := 0; step < 20; step++ {
		if err := s.Step(1.0); err != nil {
			t.Fatal(err)
		}
		if v := s.MaxConstraintViolation(); v > 1e-7 {
			t.Fatalf("step %d: constraint violation %v", step, v)
		}
	}
}

func TestMomentumConservedUnderIntegration(t *testing.T) {
	s := buildSystem(t, 27, 8)
	s.ComputeForces()
	for step := 0; step < 20; step++ {
		if err := s.Step(1.0); err != nil {
			t.Fatal(err)
		}
	}
	if p := s.TotalMomentum().Norm(); p > 1e-6 {
		t.Fatalf("momentum drifted to %v", p)
	}
}

// NVE energy conservation: after a short Berendsen settling phase, the total
// energy over an NVE stretch must be stable to a small fraction of the
// kinetic energy.
func TestEnergyConservationNVE(t *testing.T) {
	s := buildSystem(t, 27, 9)
	s.ComputeForces()
	// Settle the lattice start so forces are moderate.
	for step := 0; step < 100; step++ {
		if err := s.Step(0.5); err != nil {
			t.Fatal(err)
		}
		s.BerendsenRescale(298, 50, 0.5)
	}
	s.ComputeForces()
	e0 := s.TotalEnergy()
	var maxDrift float64
	for step := 0; step < 200; step++ {
		if err := s.Step(0.5); err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(s.TotalEnergy() - e0); d > maxDrift {
			maxDrift = d
		}
	}
	ke := s.KineticEnergy()
	if maxDrift > 0.05*ke {
		t.Fatalf("NVE drift %v kcal/mol exceeds 5%% of KE %v", maxDrift, ke)
	}
}

func TestBerendsenDrivesTemperature(t *testing.T) {
	s := buildSystem(t, 27, 10)
	// Start hot.
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Scale(2)
	}
	s.ComputeForces()
	start := s.Temperature()
	for step := 0; step < 600; step++ {
		if err := s.Step(0.5); err != nil {
			t.Fatal(err)
		}
		s.BerendsenRescale(298, 25, 0.5)
	}
	T := s.Temperature()
	if math.Abs(T-298) > 80 {
		t.Fatalf("temperature %v did not approach 298 (started at %v)", T, start)
	}
}

func TestCellListMatchesDirectPairs(t *testing.T) {
	// 216 molecules with a small cutoff gives >= 3 cells per side, so the
	// cell list engages; energies must match the direct double loop.
	s, err := NewSystem(Config{N: 216, Seed: 11, Cutoff: 6.0})
	if err != nil {
		t.Fatal(err)
	}
	cells := int(s.Box.L / s.Cutoff)
	if cells < 3 {
		t.Fatalf("test setup: expected cell list to engage (cells=%d)", cells)
	}

	type pair struct{ a, b int }
	direct := map[pair]bool{}
	for i := 0; i < s.N; i++ {
		for j := i + 1; j < s.N; j++ {
			d := s.Box.MinImage(s.Pos[i*SitesPerMol].Sub(s.Pos[j*SitesPerMol]))
			if d.Norm() < s.Cutoff {
				direct[pair{i, j}] = true
			}
		}
	}
	visited := map[pair]int{}
	s.cellListPairs(cells, func(a, b int) {
		if a > b {
			a, b = b, a
		}
		visited[pair{a, b}]++
	})
	for p := range direct {
		if visited[p] == 0 {
			t.Fatalf("cell list missed in-range pair %v", p)
		}
	}
	for p, n := range visited {
		if n > 1 {
			t.Fatalf("cell list visited pair %v %d times", p, n)
		}
	}
}

func TestIdealGasPressure(t *testing.T) {
	// With interactions switched off (eps=0, q=0), the virial and tail
	// vanish and the molecular pressure is purely the translational ideal
	// term 2 K_trans / (3V) ~ rho_mol kB T.
	s := buildSystem(t, 64, 12)
	s.Model.EpsilonOO = 0
	s.Model.QH = 0
	s.ComputeForces()
	if s.Potential != 0 || s.Virial != 0 {
		t.Fatalf("non-interacting system has U=%v W=%v", s.Potential, s.Virial)
	}
	got := s.Pressure()
	want := 2 * s.TranslationalKE() / (3 * s.Box.Volume()) * PressureToAtm
	if math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Fatalf("pressure %v, want %v", got, want)
	}
	// rho kB T at 0.997 g/cm^3 and ~298 K is ~1360 atm.
	if want < 100 || want > 10000 {
		t.Fatalf("ideal kinetic pressure %v atm outside plausibility window", want)
	}
}

func TestTailCorrectionsSigns(t *testing.T) {
	// At liquid density with rc ~ 2 sigma, both corrections are negative
	// (the truncated region is attractive).
	s := buildSystem(t, 64, 12)
	uTail, pTail := s.TailCorrections()
	if uTail >= 0 || pTail >= 0 {
		t.Fatalf("tail corrections u=%v p=%v, want negative", uTail, pTail)
	}
	// Energy correction should be a modest fraction of the total cohesion.
	if uTail/float64(s.N) < -1.0 {
		t.Fatalf("uTail per molecule %v kcal/mol implausibly large", uTail/float64(s.N))
	}
}

func TestTranslationalKEBelowTotal(t *testing.T) {
	s := buildSystem(t, 27, 13)
	kt := s.TranslationalKE()
	k := s.KineticEnergy()
	if kt <= 0 || kt >= k {
		t.Fatalf("K_trans = %v vs K = %v", kt, k)
	}
	// Equipartition: translational DOF are 3N-3 of the 6N-3 total.
	ratio := kt / k
	want := float64(3*s.N-3) / float64(6*s.N-3)
	if math.Abs(ratio-want) > 0.25 {
		t.Fatalf("K_trans/K = %v, equipartition expects ~%v", ratio, want)
	}
}

func TestRDFIdealGasIsFlat(t *testing.T) {
	// Random uniform "molecules" (O sites only matter) must give g(r) ~ 1.
	s := buildSystem(t, 125, 13)
	rng := rand.New(rand.NewSource(99))
	rdf := NewRDF(s, 40)
	for frame := 0; frame < 40; frame++ {
		for m := 0; m < s.N; m++ {
			s.Pos[m*SitesPerMol+SiteO] = Vec3{
				rng.Float64() * s.Box.L,
				rng.Float64() * s.Box.L,
				rng.Float64() * s.Box.L,
			}
		}
		rdf.Accumulate(s, PairOO)
	}
	rs, g := rdf.Curve()
	// Skip the smallest bins (poor statistics).
	for k := range rs {
		if rs[k] < 2 {
			continue
		}
		if math.Abs(g[k]-1) > 0.25 {
			t.Fatalf("ideal-gas g(%0.2f) = %v, want ~1", rs[k], g[k])
		}
	}
}

func TestRDFRMSDeviationZeroAgainstSelf(t *testing.T) {
	s := buildSystem(t, 27, 14)
	rdf := NewRDF(s, 30)
	rdf.Accumulate(s, PairOO)
	_, g := rdf.Curve()
	if d := rdf.RMSDeviation(g, 0, s.Box.L/2); d != 0 {
		t.Fatalf("self deviation = %v", d)
	}
}

func TestMSDBallisticParticles(t *testing.T) {
	// Molecules translating rigidly at constant velocity v have
	// MSD(t) = |v|^2 t^2; check the recorder tracks that exactly.
	s := buildSystem(t, 8, 15)
	v := Vec3{0.01, 0, 0}
	msd := NewMSD(s)
	for step := 1; step <= 4; step++ {
		for i := range s.Pos {
			s.Pos[i] = s.Pos[i].Add(v)
		}
		msd.Record(s, float64(step))
	}
	for i, tt := range msd.times {
		want := v.Norm2() * tt * tt
		if math.Abs(msd.msds[i]-want) > 1e-12 {
			t.Fatalf("MSD(%v) = %v, want %v", tt, msd.msds[i], want)
		}
	}
}

func TestDiffusionOfLinearMSD(t *testing.T) {
	// A synthetic MSD growing exactly as 6 D t must return D.
	m := &MSD{}
	const d = 2.5e-7 // A^2/fs
	for i := 1; i <= 20; i++ {
		tt := float64(i) * 100
		m.times = append(m.times, tt)
		m.msds = append(m.msds, 6*d*tt)
	}
	got := m.Diffusion()
	want := d * A2PerFsToCm2PerS
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Diffusion = %v, want %v", got, want)
	}
}

func TestSitePairString(t *testing.T) {
	if PairOO.String() != "gOO" || PairOH.String() != "gOH" || PairHH.String() != "gHH" {
		t.Fatal("SitePair names wrong")
	}
}

// End-to-end smoke test of the full two-phase protocol on a small box.
func TestRunProtocolSmoke(t *testing.T) {
	s := buildSystem(t, 27, 16)
	props, err := s.Run(RunConfig{
		Dt:          1.0,
		EquilSteps:  150,
		ProdSteps:   150,
		SampleEvery: 10,
		RDFBins:     40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if props.Frames != 15 {
		t.Fatalf("frames = %d, want 15", props.Frames)
	}
	// Liquid water potential energy per molecule should be strongly
	// negative (tens of kJ/mol) even in a rough, short run.
	if props.EnergyKJPerMol > -5 || props.EnergyKJPerMol < -120 {
		t.Fatalf("U = %v kJ/mol implausible", props.EnergyKJPerMol)
	}
	if props.TemperatureK < 150 || props.TemperatureK > 500 {
		t.Fatalf("T = %v K implausible", props.TemperatureK)
	}
	if props.DiffusionCm2PerS < 0 {
		t.Fatalf("negative diffusion %v", props.DiffusionCm2PerS)
	}
	_, gOO := props.GOO.Curve()
	peak := 0.0
	for _, g := range gOO {
		if g > peak {
			peak = g
		}
	}
	if peak < 1.2 {
		t.Fatalf("gOO peak %v shows no liquid structure", peak)
	}
}
