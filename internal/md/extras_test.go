package md

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestEnergyStatsConstantEnergy(t *testing.T) {
	s := buildSystem(t, 8, 20)
	var es EnergyStats
	s.ComputeForces()
	for i := 0; i < 5; i++ {
		es.Record(s) // identical frames: zero variance
	}
	if es.Frames() != 5 {
		t.Fatalf("frames = %d", es.Frames())
	}
	if cv := es.HeatCapacity(); cv != 0 {
		t.Fatalf("Cv of constant energy = %v, want 0", cv)
	}
	if math.Abs(es.MeanEnergy()-s.TotalEnergy()) > 1e-9 {
		t.Fatalf("mean energy = %v, want %v", es.MeanEnergy(), s.TotalEnergy())
	}
}

func TestHeatCapacityPlausibleForWater(t *testing.T) {
	s := buildSystem(t, 27, 21)
	s.ComputeForces()
	// Short NVT trajectory with a weak thermostat so energy fluctuates.
	var es EnergyStats
	for step := 0; step < 400; step++ {
		if err := s.Step(1.0); err != nil {
			t.Fatal(err)
		}
		s.BerendsenRescale(298, 400, 1.0)
		if step%5 == 4 {
			es.Record(s)
		}
	}
	cv := es.HeatCapacity() / float64(s.N) // per molecule
	// Water's Cv ~ 18 cal/(mol K) = 0.018 kcal/(mol K); a short noisy run
	// lands within an order of magnitude.
	if cv <= 0 || cv > 1 {
		t.Fatalf("Cv per molecule = %v kcal/mol/K implausible", cv)
	}
}

func TestXYZRoundTrip(t *testing.T) {
	s := buildSystem(t, 8, 22)
	var buf bytes.Buffer
	if err := s.WriteXYZ(&buf, "frame 0"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "24\n") {
		t.Fatalf("header: %q", out[:10])
	}
	if strings.Count(out, "\n") != 2+24 {
		t.Fatalf("line count wrong")
	}

	// Read the frame into a second system; wrapped positions must match.
	s2 := buildSystem(t, 8, 23)
	if err := s2.ReadXYZ(strings.NewReader(out)); err != nil {
		t.Fatal(err)
	}
	for i := range s.Pos {
		a := s.Box.Wrap(s.Pos[i])
		b := s2.Pos[i]
		if a.Sub(b).Norm() > 1e-5 {
			t.Fatalf("site %d: %v vs %v", i, a, b)
		}
	}
}

func TestReadXYZCountMismatch(t *testing.T) {
	s := buildSystem(t, 8, 24)
	if err := s.ReadXYZ(strings.NewReader("3\nc\nO 0 0 0\nH 1 0 0\nH 0 1 0\n")); err == nil {
		t.Fatal("count mismatch accepted")
	}
}

func TestDensityMatchesConfig(t *testing.T) {
	s := buildSystem(t, 64, 25)
	if rho := s.Density(); math.Abs(rho-0.997) > 1e-6 {
		t.Fatalf("density = %v, want 0.997", rho)
	}
}
