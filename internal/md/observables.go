package md

import (
	"fmt"
	"math"
)

// RDF accumulates a radial distribution function between two site kinds
// over multiple frames.
type RDF struct {
	// RMax is the histogram range (at most half the box).
	RMax float64
	// Bins is the bin count.
	Bins int

	counts []float64
	frames int
	// pairsA/pairsB are the site counts of each species per frame, and
	// sameKind marks an A-A RDF (half the pairs).
	nA, nB   int
	sameKind bool
	volume   float64
}

// SitePair selects which RDF to accumulate.
type SitePair int

// The three RDFs entering the paper's cost function (eq 3.4).
const (
	PairOO SitePair = iota
	PairOH
	PairHH
)

// String implements fmt.Stringer.
func (p SitePair) String() string {
	switch p {
	case PairOO:
		return "gOO"
	case PairOH:
		return "gOH"
	case PairHH:
		return "gHH"
	default:
		return fmt.Sprintf("SitePair(%d)", int(p))
	}
}

// NewRDF creates an accumulator with rmax capped at half the box edge.
func NewRDF(s *System, bins int) *RDF {
	return &RDF{RMax: s.Box.L / 2, Bins: bins, counts: make([]float64, bins)}
}

// Accumulate adds the pair histogram of the current frame.
func (r *RDF) Accumulate(s *System, pair SitePair) {
	sitesA, sitesB, same := rdfSites(s, pair)
	r.nA, r.nB, r.sameKind = len(sitesA), len(sitesB), same
	r.volume = s.Box.Volume()
	dr := r.RMax / float64(r.Bins)
	add := func(pi, pj Vec3) {
		d := s.Box.MinImage(pi.Sub(pj)).Norm()
		if d >= r.RMax || d == 0 {
			return
		}
		r.counts[int(d/dr)]++
	}
	if same {
		for i := 0; i < len(sitesA); i++ {
			for j := i + 1; j < len(sitesA); j++ {
				add(sitesA[i], sitesA[j])
			}
		}
	} else {
		for _, a := range sitesA {
			for _, b := range sitesB {
				add(a, b)
			}
		}
	}
	r.frames++
}

func rdfSites(s *System, pair SitePair) (a, b []Vec3, same bool) {
	var os, hs []Vec3
	for m := 0; m < s.N; m++ {
		base := m * SitesPerMol
		os = append(os, s.Pos[base+SiteO])
		hs = append(hs, s.Pos[base+SiteH1], s.Pos[base+SiteH2])
	}
	switch pair {
	case PairOO:
		return os, os, true
	case PairOH:
		return os, hs, false
	case PairHH:
		return hs, hs, true
	default:
		panic("md: unknown site pair")
	}
}

// Curve returns the bin centers and the normalized g(r): the observed pair
// density divided by the ideal-gas expectation.
func (r *RDF) Curve() (rs, g []float64) {
	rs = make([]float64, r.Bins)
	g = make([]float64, r.Bins)
	if r.frames == 0 {
		return rs, g
	}
	dr := r.RMax / float64(r.Bins)
	var npairs float64
	if r.sameKind {
		npairs = float64(r.nA) * float64(r.nA-1) / 2
	} else {
		npairs = float64(r.nA) * float64(r.nB)
	}
	for k := 0; k < r.Bins; k++ {
		rc := (float64(k) + 0.5) * dr
		rs[k] = rc
		shellVol := 4 * math.Pi * rc * rc * dr
		ideal := npairs * shellVol / r.volume
		if ideal > 0 {
			g[k] = r.counts[k] / (float64(r.frames) * ideal)
		}
	}
	return rs, g
}

// RMSDeviation computes the paper's RDF residual (eq 3.5): the
// root-mean-square difference between this g(r) and a reference curve,
// evaluated over [rmin, rmax]. ref must be sampled on the same bins.
func (r *RDF) RMSDeviation(refG []float64, rmin, rmax float64) float64 {
	rs, g := r.Curve()
	sum, n := 0.0, 0
	for k := range rs {
		if rs[k] < rmin || rs[k] > rmax || k >= len(refG) {
			continue
		}
		d := g[k] - refG[k]
		sum += d * d
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(n))
}

// MSD tracks mean-square displacement of molecular centers of mass on
// unwrapped coordinates, for the self-diffusion coefficient.
type MSD struct {
	origin []Vec3
	times  []float64
	msds   []float64
}

// NewMSD captures the origin frame.
func NewMSD(s *System) *MSD {
	m := &MSD{origin: make([]Vec3, s.N)}
	for i := 0; i < s.N; i++ {
		m.origin[i] = s.COM(i)
	}
	return m
}

// Record appends the MSD at elapsed time t (fs).
func (m *MSD) Record(s *System, t float64) {
	sum := 0.0
	for i := 0; i < s.N; i++ {
		sum += s.COM(i).Sub(m.origin[i]).Norm2()
	}
	m.times = append(m.times, t)
	m.msds = append(m.msds, sum/float64(s.N))
}

// Diffusion returns the self-diffusion coefficient in cm^2/s from the
// Einstein relation MSD = 6 D t, fit by least squares over the second half
// of the recorded trajectory (the diffusive regime).
func (m *MSD) Diffusion() float64 {
	n := len(m.times)
	if n < 4 {
		return 0
	}
	lo := n / 2
	// Least squares slope through the origin-shifted points.
	var sxx, sxy float64
	for i := lo; i < n; i++ {
		sxx += m.times[i] * m.times[i]
		sxy += m.times[i] * m.msds[i]
	}
	if sxx == 0 {
		return 0
	}
	slope := sxy / sxx // A^2/fs
	return slope / 6 * A2PerFsToCm2PerS
}
