package sim

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/testfunc"
)

// burn is the simulated per-increment CPU cost of an expensive objective
// (the stand-in for one MD trajectory segment).
func burn(n int) func([]float64, float64) {
	return func([]float64, float64) {
		x := 1.0
		for i := 0; i < n; i++ {
			x = math.Sqrt(x + float64(i&7))
		}
		if x < 0 {
			panic("unreachable")
		}
	}
}

// BenchmarkSampleAllExpensive measures one SampleAll over a d+3 = 16 point
// batch of an expensive objective at increasing worker counts; workers=1 is
// the serial baseline of the pre-sched code path. The acceptance target is
// >= 2x speedup at 4 workers on a multi-core host.
func BenchmarkSampleAllExpensive(b *testing.B) {
	const batch = 16
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := NewLocalSpace(LocalConfig{
				Dim:        3,
				F:          testfunc.Rosenbrock,
				Sigma0:     ConstSigma(10),
				Seed:       1,
				Parallel:   true,
				Workers:    workers,
				SampleCost: burn(200_000),
			})
			defer s.Close()
			pts := make([]Point, batch)
			for i := range pts {
				pts[i] = s.NewPoint([]float64{float64(i), 1, 2})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.SampleAll(pts, 0.1)
			}
		})
	}
}

// BenchmarkSampleAllLatencyBound models the paper's deployment shape: each
// sampling increment waits on an external simulation (a remote MD worker, a
// file-spool round-trip) rather than burning local CPU. Concurrent dispatch
// overlaps those latencies, so the batch completes in ~batch/workers of the
// serial time even on a single-core host — this is the benchmark that
// demonstrates the scheduler's >= 2x win at 4+ workers regardless of core
// count. (BenchmarkSampleAllExpensive is the CPU-bound variant; it scales
// with physical cores only.)
func BenchmarkSampleAllLatencyBound(b *testing.B) {
	const batch = 16
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := NewLocalSpace(LocalConfig{
				Dim:        3,
				F:          testfunc.Rosenbrock,
				Sigma0:     ConstSigma(10),
				Seed:       1,
				Parallel:   true,
				Workers:    workers,
				SampleCost: func([]float64, float64) { time.Sleep(200 * time.Microsecond) },
			})
			defer s.Close()
			pts := make([]Point, batch)
			for i := range pts {
				pts[i] = s.NewPoint([]float64{float64(i), 1, 2})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.SampleAll(pts, 0.1)
			}
		})
	}
}

// BenchmarkSampleAllCheap measures the scheduling overhead when the
// objective is too cheap to parallelize (pure noise draws): the cost a
// scheduler must not add to light workloads.
func BenchmarkSampleAllCheap(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := NewLocalSpace(LocalConfig{
				Dim:      3,
				F:        testfunc.Rosenbrock,
				Sigma0:   ConstSigma(10),
				Seed:     1,
				Parallel: true,
				Workers:  workers,
			})
			defer s.Close()
			pts := make([]Point, 16)
			for i := range pts {
				pts[i] = s.NewPoint([]float64{float64(i), 1, 2})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.SampleAll(pts, 0.1)
			}
		})
	}
}
