package sim

import (
	"context"
	"testing"
)

// TestSampleBatchAllocBudget is the allocation budget on the in-process
// batch sampling path: one batch of any width must cost O(1) allocations —
// the scheduler's batch header plus the dispatch closure — never O(points).
// Serial spaces (Workers: 1) pay exactly the one closure.
func TestSampleBatchAllocBudget(t *testing.T) {
	ctx := context.Background()
	points := func(s *LocalSpace, n int) []Point {
		ps := make([]Point, n)
		for i := range ps {
			ps[i] = s.NewPoint([]float64{0.5, -0.25})
		}
		return ps
	}

	t.Run("serial", func(t *testing.T) {
		s := NewLocalSpace(LocalConfig{Dim: 2, F: func(x []float64) float64 { return x[0] * x[0] }, Sigma0: ConstSigma(0.5), Seed: 3, Workers: 1})
		defer s.Close()
		ps := points(s, 16)
		allocs := testing.AllocsPerRun(100, func() {
			if err := s.SampleBatch(ctx, ps, 0.01); err != nil {
				t.Fatal(err)
			}
		})
		// The single allocation is the indexed dispatch closure handed to
		// the pool; it is batch-scoped, so the per-point cost is zero.
		if allocs > 1 {
			t.Errorf("serial SampleBatch(16): %.1f allocs per call, want <= 1", allocs)
		}
	})

	t.Run("concurrent", func(t *testing.T) {
		const budget = 10
		s := NewLocalSpace(LocalConfig{Dim: 2, F: func(x []float64) float64 { return x[0] * x[0] }, Sigma0: ConstSigma(0.5), Seed: 3, Workers: 4})
		defer s.Close()
		ps := points(s, 64)
		allocs := testing.AllocsPerRun(50, func() {
			if err := s.SampleBatch(ctx, ps, 0.01); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > budget {
			t.Errorf("concurrent SampleBatch(64): %.1f allocs per call, budget %d", allocs, budget)
		}
		t.Logf("concurrent SampleBatch(64): %.1f allocs per call (budget %d)", allocs, budget)
	})
}
