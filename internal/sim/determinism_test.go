package sim

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/testfunc"
)

// runBatches drives a fixed sequence of batch sampling through a space with
// the given worker count and returns every point's final estimate.
func runBatches(t *testing.T, workers int) []Estimate {
	t.Helper()
	s := NewLocalSpace(LocalConfig{
		Dim:      3,
		F:        testfunc.Rosenbrock,
		Sigma0:   ConstSigma(25),
		Seed:     7,
		Parallel: true,
		Workers:  workers,
	})
	defer s.Close()
	pts := make([]Point, 12)
	for i := range pts {
		pts[i] = s.NewPoint([]float64{float64(i), float64(i % 3), 1})
	}
	dt := 0.5
	for round := 0; round < 6; round++ {
		s.SampleAll(pts, dt)
		dt *= 2
	}
	// A sub-batch, as the optimizer issues for trial points.
	s.SampleAll(pts[:4], 1.0)
	out := make([]Estimate, len(pts))
	for i, p := range pts {
		out[i] = p.Estimate()
	}
	return out
}

// TestSerialConcurrentIdentical is the determinism contract of the sched
// refactor: per-point noise streams make the sampled values a pure function
// of (seed, point index, sampling history), so the worker count must not
// change a single bit of any estimate.
func TestSerialConcurrentIdentical(t *testing.T) {
	serial := runBatches(t, 1)
	for _, workers := range []int{2, 4, 8} {
		conc := runBatches(t, workers)
		if !reflect.DeepEqual(serial, conc) {
			t.Fatalf("estimates differ between workers=1 and workers=%d:\n%v\nvs\n%v", workers, serial, conc)
		}
	}
}

// TestConcurrentSampleRace is the -race regression test: a large batch
// sampled through many workers, repeatedly, with live Estimate reads between
// batches. Any shared-RNG or counter race surfaces under -race.
func TestConcurrentSampleRace(t *testing.T) {
	s := NewLocalSpace(LocalConfig{
		Dim:      2,
		F:        testfunc.Rosenbrock,
		Sigma0:   ConstSigma(5),
		Seed:     11,
		Parallel: true,
		Workers:  8,
	})
	defer s.Close()
	pts := make([]Point, 64)
	for i := range pts {
		pts[i] = s.NewPoint([]float64{float64(i % 5), float64(i % 7)})
	}
	for round := 0; round < 20; round++ {
		s.SampleAll(pts, 0.25)
		for _, p := range pts {
			if e := p.Estimate(); math.IsNaN(e.Mean) {
				t.Fatal("NaN estimate")
			}
		}
	}
	if got, want := s.Evaluations(), int64(20*64); got != want {
		t.Fatalf("Evaluations = %d, want %d", got, want)
	}
}

// TestSampleBatchCancel verifies the context path: a canceled context stops
// the batch, reports the cancellation, and leaves the wall clock alone.
func TestSampleBatchCancel(t *testing.T) {
	s := NewLocalSpace(LocalConfig{
		Dim:      2,
		F:        testfunc.Rosenbrock,
		Sigma0:   ConstSigma(1),
		Seed:     1,
		Parallel: true,
		Workers:  2,
	})
	defer s.Close()
	pts := []Point{s.NewPoint([]float64{0, 0}), s.NewPoint([]float64{1, 1})}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.SampleBatch(ctx, pts, 1); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if now := s.Clock().Now(); now != 0 {
		t.Fatalf("clock advanced to %v on canceled batch", now)
	}
}

// TestSampleCostRuns verifies the per-increment cost hook fires once per
// point per batch, concurrently safe.
func TestSampleCostRuns(t *testing.T) {
	s := NewLocalSpace(LocalConfig{
		Dim:    2,
		F:      testfunc.Rosenbrock,
		Sigma0: ConstSigma(1),
		Seed:   1,
		SampleCost: func(x []float64, dt float64) {
			if len(x) != 2 || dt != 0.5 {
				t.Errorf("SampleCost(%v, %v)", x, dt)
			}
		},
		Parallel: true,
		Workers:  4,
	})
	defer s.Close()
	pts := make([]Point, 8)
	for i := range pts {
		pts[i] = s.NewPoint([]float64{1, 2})
	}
	s.SampleAll(pts, 0.5)
	if got := s.Evaluations(); got != 8 {
		t.Fatalf("Evaluations = %d, want 8", got)
	}
}

// TestSampleAllAfterClosePanics pins the use-after-Close contract: a space
// whose private pool was released must fail loudly, not silently skip the
// batch (which would freeze the clock and stall wait loops).
func TestSampleAllAfterClosePanics(t *testing.T) {
	s := NewLocalSpace(LocalConfig{
		Dim:      2,
		F:        testfunc.Rosenbrock,
		Sigma0:   ConstSigma(1),
		Seed:     1,
		Parallel: true,
		Workers:  2,
	})
	pts := []Point{s.NewPoint([]float64{0, 0}), s.NewPoint([]float64{1, 1})}
	s.SampleAll(pts, 1) // start the pool
	s.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("SampleAll on closed space did not panic")
		}
	}()
	s.SampleAll(pts, 1)
}
