package sim

import (
	"testing"

	"repro/internal/testfunc"
)

func snapCfg(seed int64) LocalConfig {
	return LocalConfig{
		Dim:      3,
		F:        testfunc.Rosenbrock,
		Sigma0:   ConstSigma(25),
		Seed:     seed,
		Parallel: true,
	}
}

// TestPointExportRestore checks that a restored point continues to observe
// exactly the noise sequence the original would have, and that the export
// itself does not perturb the original's stream.
func TestPointExportRestore(t *testing.T) {
	orig := NewLocalSpace(snapCfg(7))
	p := orig.NewPoint([]float64{0.5, -1, 2})
	for i := 0; i < 5; i++ {
		p.Sample(0.7)
	}

	st, err := orig.ExportPoint(p)
	if err != nil {
		t.Fatal(err)
	}
	spaceSt := orig.ExportState()

	// Fresh "process": a new space from the same config.
	fresh := NewLocalSpace(snapCfg(7))
	if err := fresh.RestoreState(spaceSt); err != nil {
		t.Fatal(err)
	}
	q, err := fresh.RestorePoint(st)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := q.Estimate(), p.Estimate(); got != want {
		t.Fatalf("restored estimate %+v != original %+v", got, want)
	}

	// Future draws must match bitwise, increment by increment.
	for i := 0; i < 8; i++ {
		p.Sample(1.3)
		q.Sample(1.3)
		if got, want := q.Estimate(), p.Estimate(); got != want {
			t.Fatalf("post-restore increment %d: %+v != %+v", i, got, want)
		}
	}
	if fresh.Clock().Now() != orig.Clock().Now() {
		t.Fatalf("clock diverged: %v != %v", fresh.Clock().Now(), orig.Clock().Now())
	}
}

// TestRestoreStateNextStream checks that points created after a resume use
// the same streams they would have uninterrupted.
func TestRestoreStateNextStream(t *testing.T) {
	orig := NewLocalSpace(snapCfg(3))
	a := orig.NewPoint([]float64{1, 2, 3})
	_ = a
	st := orig.ExportState()
	later := orig.NewPoint([]float64{0, 0, 0})
	later.Sample(1)

	fresh := NewLocalSpace(snapCfg(3))
	if err := fresh.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	resumedLater := fresh.NewPoint([]float64{0, 0, 0})
	resumedLater.Sample(1)
	if got, want := resumedLater.Estimate(), later.Estimate(); got != want {
		t.Fatalf("next-stream point diverged: %+v != %+v", got, want)
	}
}

func TestExportPointErrors(t *testing.T) {
	s := NewLocalSpace(snapCfg(1))
	p := s.NewPoint([]float64{0, 0, 0})
	p.Close()
	if _, err := s.ExportPoint(p); err == nil {
		t.Fatal("ExportPoint on closed point did not error")
	}
	if _, err := s.RestorePoint(PointState{X: []float64{1}}); err == nil {
		t.Fatal("RestorePoint with wrong dimension did not error")
	}
}
