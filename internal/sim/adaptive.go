package sim

import (
	"context"
	"math"
)

// This file is the sampling layer's face of the two batch-shape upgrades the
// speculative driver rides on:
//
//   - ranked batches: a speculative simplex step submits every candidate move
//     as one batch, but when the worker pool is narrower than the batch the
//     dispatch order matters — the reflection (always consumed) should run
//     before the expansion (consumed only on a new best) and the shrink
//     vertices (consumed only on a collapse). SampleBatchRanked carries that
//     ordering down to the sched priority queue.
//   - adaptive sampling: instead of a fixed initial allotment, a fresh point
//     is sampled in geometrically growing rounds until the confidence
//     half-width of its estimate (z * sigma, with sigma the backend's
//     Welford-based estimate under SigmaEstimated) meets a target. The gate
//     reads only completed-batch state, so which points continue is a pure
//     function of the noise streams — deterministic at any worker count.

// RankedSampler is the optional prioritized face of a Space: SampleBatch
// whose dispatch order follows a caller-supplied rank (lower ranks start
// first when workers are scarce). Ranks affect real scheduling only, never
// results: per-point noise streams make the outcome independent of execution
// order.
type RankedSampler interface {
	// SampleBatchRanked samples every point for dt virtual seconds,
	// dispatching in ascending rank(i) order. Semantics otherwise match
	// BatchSampler.SampleBatch.
	SampleBatchRanked(ctx context.Context, points []Point, dt float64, rank func(i int) int) error
}

// SampleBatchRanked samples the batch through the space's ranked path when it
// has one, else through the plain concurrent path (ranks dropped). A nil rank
// degrades to SampleBatch.
func SampleBatchRanked(ctx context.Context, space Space, points []Point, dt float64, rank func(i int) int) error {
	if rank != nil {
		if rs, ok := space.(RankedSampler); ok {
			return rs.SampleBatchRanked(ctx, points, dt, rank)
		}
	}
	return SampleBatch(ctx, space, points, dt)
}

// SampleBatchRanked implements RankedSampler: the batch is submitted to the
// sched pool as prioritized entries, so low-rank points dispatch first. On
// cancellation the not-yet-started entries are withdrawn (sched.Entry.Cancel)
// and the wall clock does not advance.
func (s *LocalSpace) SampleBatchRanked(ctx context.Context, points []Point, dt float64, rank func(i int) int) error {
	if len(points) == 0 {
		return ctx.Err()
	}
	if rank == nil {
		return s.SampleBatch(ctx, points, dt)
	}
	lps := s.checkBatch(points)
	if s.cfg.Fleet != nil {
		return s.sampleFleet(ctx, lps, dt, rank)
	}
	b := s.pool.NewBatchAs(s.cfg.Tenant)
	for i, lp := range lps {
		lp := lp
		b.Submit(rank(i), func() { lp.sample(dt) })
	}
	if err := b.Wait(ctx); err != nil {
		return err
	}
	s.advanceBatch(len(points), dt)
	return nil
}

// AdaptivePlan configures variance-adaptive sampling of a batch of fresh
// points.
type AdaptivePlan struct {
	// HalfWidth is the target confidence half-width: a point is resolved
	// when Z * Estimate().Sigma <= HalfWidth. Must be positive.
	HalfWidth float64
	// Z is the confidence multiplier. Zero selects 1.96 (a 95% normal
	// interval).
	Z float64
	// Grow multiplies the sampling increment after each round (values < 1
	// are treated as 1), so reaching a 1/sqrt(t) noise target takes O(log)
	// rounds.
	Grow float64
	// MaxRounds caps the growth rounds after the initial allotment; a point
	// still above the half-width then keeps its estimate as-is. Zero or
	// negative means no extra rounds.
	MaxRounds int
	// Clamp, if non-nil, limits each round's increment (the optimizer passes
	// its walltime-budget clamp). A clamped increment of <= 0 stops the
	// growth loop.
	Clamp func(dt float64) float64
}

// z returns the effective confidence multiplier.
func (p *AdaptivePlan) z() float64 {
	if p.Z <= 0 {
		return 1.96
	}
	return p.Z
}

// grow returns the effective per-round growth factor.
func (p *AdaptivePlan) grow() float64 {
	if p.Grow < 1 {
		return 1
	}
	return p.Grow
}

// resolved reports whether a point's estimate meets the half-width target.
func (p *AdaptivePlan) resolved(pt Point) bool {
	sigma := pt.Estimate().Sigma
	if math.IsInf(sigma, 1) {
		return false
	}
	return p.z()*sigma <= p.HalfWidth
}

// SampleAdaptive gives a batch of fresh points a variance-adaptive sampling
// allotment: every point first samples dt0 (one ranked batch), then the
// points whose confidence half-width is still above the plan's target sample
// additional geometrically growing rounds until all resolve, the round cap is
// reached, or the clamp exhausts the budget. It returns the number of growth
// rounds taken.
//
// Determinism: the continue/stop decision for each round reads only the
// estimates of the completed previous round, and each point's estimate is a
// pure function of its private noise stream and its own sampling history, so
// the rounds — and every sampled value — are bitwise identical at any worker
// count.
func SampleAdaptive(ctx context.Context, space Space, points []Point, dt0 float64, plan AdaptivePlan, rank func(i int) int) (rounds int, err error) {
	if err := SampleBatchRanked(ctx, space, points, dt0, rank); err != nil {
		return 0, err
	}
	dt := dt0 * plan.grow()
	var pending []Point // reused across rounds; each round only shrinks it
	for rounds < plan.MaxRounds {
		pending = pending[:0]
		for _, pt := range points {
			if !plan.resolved(pt) {
				pending = append(pending, pt)
			}
		}
		if len(pending) == 0 {
			return rounds, nil
		}
		step := dt
		if plan.Clamp != nil {
			step = plan.Clamp(dt)
		}
		if step <= 0 {
			return rounds, nil
		}
		if err := SampleBatch(ctx, space, pending, step); err != nil {
			return rounds, err
		}
		rounds++
		mAdaptiveRounds.Inc()
		dt *= plan.grow()
	}
	return rounds, nil
}
