package sim

import (
	"context"
	"fmt"
)

// This file is the sampling layer's face of the distributed fleet backend
// (internal/dist): a LocalSpace configured with a FleetSampler farms every
// batch's sampling increments out to remote worker agents instead of its
// in-process sched pool, reproducing the paper's deployment shape — one
// master, many evaluator processes — over TCP.
//
// The determinism argument is the same one that makes the in-process pool
// safe: a sampling increment of point p is a pure function of
// (stream seed, draw index, dt). A fleet request carries exactly that
// identity, the worker reconstructs the stream from the seed, fast-forwards
// to the draw index and returns the draw, and the coordinator applies it
// through noise.Stream.ApplyDraw. The same request therefore yields the same
// bits from any worker, at any fleet size, and after any number of
// re-dispatches — worker death changes only who computed a draw, never its
// value.

// FleetRequest is one sampling increment to execute remotely: the identity of
// the draw (Seed, Skip), the evaluation the worker performs (Objective at X,
// the expensive simulation being farmed out), and the dispatch priority.
type FleetRequest struct {
	// Objective names the objective function in the worker's catalog.
	Objective string
	// X holds the point's coordinates.
	X []float64
	// Seed is the point's noise-stream seed.
	Seed int64
	// Skip is the number of draws the stream has already consumed; the
	// worker's draw is the (Skip+1)-th normal variate of the seeded stream.
	Skip int
	// Dt is the sampling increment in virtual seconds.
	Dt float64
	// Priority orders dispatch when the fleet is narrower than the batch
	// (lower dispatches earlier). It never affects values, only scheduling.
	Priority int
}

// FleetResult is the worker's answer to one FleetRequest.
type FleetResult struct {
	// Z is the standard-normal draw at position Skip of stream Seed.
	Z float64
	// F is the objective value the worker computed at X. The space checks it
	// against its own noise-free value, so a worker running a different
	// objective implementation fails loudly instead of corrupting the run.
	F float64
}

// FleetSampler is a remote sampling backend: a batch of increments executed
// by worker agents beyond this process. internal/dist's Coordinator
// implements it; a LocalSpace configured with one (LocalConfig.Fleet or
// UseFleet) routes SampleBatch / SampleBatchRanked through it.
type FleetSampler interface {
	// SampleFleet executes every request and returns the results in request
	// order, blocking until all have landed or ctx ends. On a non-nil error
	// no results were applied and the batch may be partially executed
	// remotely (discarded).
	SampleFleet(ctx context.Context, reqs []FleetRequest) ([]FleetResult, error)
}

// UseFleet reroutes the space's batch sampling through a remote fleet. The
// objective name must resolve, on every worker, to the same function the
// space was built with. It must be called before any point is created: a
// space that has already sampled has stream state the fleet would not know
// about.
func (s *LocalSpace) UseFleet(fleet FleetSampler, objective string) error {
	if fleet == nil {
		return fmt.Errorf("sim: UseFleet: nil fleet")
	}
	if objective == "" {
		return fmt.Errorf("sim: UseFleet: empty objective name")
	}
	s.mu.Lock()
	started := s.nextStream != 0
	s.mu.Unlock()
	if started || s.evals.Load() != 0 {
		return fmt.Errorf("sim: UseFleet on a space that has already created points")
	}
	s.cfg.Fleet = fleet
	s.cfg.FleetObjective = objective
	return nil
}

// sampleFleet executes one batch remotely: one request per point, priorities
// from the caller's rank, results applied to the points' streams in point
// order. The virtual-clock accounting is identical to the in-process path.
func (s *LocalSpace) sampleFleet(ctx context.Context, lps []*localPoint, dt float64, rank func(i int) int) error {
	reqs := make([]FleetRequest, len(lps))
	for i, lp := range lps {
		prio := 0
		if rank != nil {
			prio = rank(i)
		}
		reqs[i] = FleetRequest{
			Objective: s.cfg.FleetObjective,
			X:         lp.x,
			Seed:      lp.seed,
			Skip:      lp.stream.Increments(),
			Dt:        dt,
			Priority:  prio,
		}
	}
	res, err := s.cfg.Fleet.SampleFleet(ctx, reqs)
	if err != nil {
		return err
	}
	if len(res) != len(lps) {
		return fmt.Errorf("sim: fleet returned %d results for %d requests", len(res), len(lps))
	}
	// Determinism guard first, application second: the workers evaluated the
	// named objective at the same coordinates, and a mismatch means the
	// fleet is running different code, so its draws cannot be trusted to
	// reproduce in-process runs. Checking the whole batch before folding in
	// any draw keeps the error path side-effect free — no stream is left
	// half-advanced by a batch that is then reported as failed.
	for i, lp := range lps {
		if res[i].F != lp.stream.Underlying() {
			return fmt.Errorf("sim: fleet objective %q disagrees at %v: worker %v, local %v",
				s.cfg.FleetObjective, lp.x, res[i].F, lp.stream.Underlying())
		}
	}
	for i, lp := range lps {
		lp.stream.ApplyDraw(dt, res[i].Z)
		s.evals.Add(1)
	}
	s.advanceBatch(len(lps), dt)
	return nil
}
