package sim

import (
	"context"
	"math"
	"testing"
)

func adaptiveTestSpace(workers int) *LocalSpace {
	return NewLocalSpace(LocalConfig{
		Dim:      2,
		F:        func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] },
		Sigma0:   ConstSigma(2),
		Seed:     5,
		Parallel: true,
		Workers:  workers,
	})
}

// TestSampleAdaptiveReachesHalfWidth verifies the growth loop: points start
// far above the half-width target and must grow their sampling until
// z*sigma <= target, identically at every worker count.
func TestSampleAdaptiveReachesHalfWidth(t *testing.T) {
	plan := AdaptivePlan{HalfWidth: 0.5, Z: 2, Grow: 2, MaxRounds: 30}
	var ref []Estimate
	var refRounds int
	for _, workers := range []int{1, 4, 8} {
		s := adaptiveTestSpace(workers)
		pts := []Point{s.NewPoint([]float64{1, 0}), s.NewPoint([]float64{0, 1}), s.NewPoint([]float64{1, 1})}
		rounds, err := SampleAdaptive(context.Background(), s, pts, 1, plan, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rounds == 0 {
			t.Fatal("no growth rounds despite a tight half-width")
		}
		ests := make([]Estimate, len(pts))
		for i, p := range pts {
			ests[i] = p.Estimate()
			if got := plan.Z * ests[i].Sigma; got > plan.HalfWidth {
				t.Errorf("workers=%d point %d: half-width %v above target %v", workers, i, got, plan.HalfWidth)
			}
		}
		if ref == nil {
			ref, refRounds = ests, rounds
			continue
		}
		if rounds != refRounds {
			t.Errorf("workers=%d: %d rounds, want %d", workers, rounds, refRounds)
		}
		for i := range ests {
			if ests[i] != ref[i] {
				t.Errorf("workers=%d point %d: estimate %+v differs from serial %+v", workers, i, ests[i], ref[i])
			}
		}
		s.Close()
	}
}

// TestSampleAdaptiveRoundCap verifies MaxRounds bounds the growth even when
// the target is unreachable.
func TestSampleAdaptiveRoundCap(t *testing.T) {
	s := adaptiveTestSpace(1)
	pts := []Point{s.NewPoint([]float64{1, 1})}
	rounds, err := SampleAdaptive(context.Background(), s, pts, 1,
		AdaptivePlan{HalfWidth: 1e-12, Grow: 2, MaxRounds: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 3 {
		t.Fatalf("rounds = %d, want the cap 3", rounds)
	}
}

// TestSampleAdaptiveClampStops verifies a clamp that exhausts the budget
// stops the loop instead of sampling a zero increment.
func TestSampleAdaptiveClampStops(t *testing.T) {
	s := adaptiveTestSpace(1)
	pts := []Point{s.NewPoint([]float64{1, 1})}
	budget := 5.0
	clamp := func(dt float64) float64 { return math.Min(dt, budget-s.Clock().Now()) }
	rounds, err := SampleAdaptive(context.Background(), s, pts, 1,
		AdaptivePlan{HalfWidth: 1e-12, Grow: 2, MaxRounds: 50, Clamp: clamp}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rounds >= 50 {
		t.Fatalf("clamp did not stop the loop (rounds=%d)", rounds)
	}
	if now := s.Clock().Now(); now > budget {
		t.Fatalf("clock %v overshot the clamp budget %v", now, budget)
	}
}

// TestSampleBatchRankedMatchesPlain verifies ranks change scheduling only:
// the sampled estimates are bitwise identical to the unranked path, and a
// nil-rank call degrades to SampleBatch even through the helper.
func TestSampleBatchRankedMatchesPlain(t *testing.T) {
	run := func(rank func(int) int) []Estimate {
		s := adaptiveTestSpace(4)
		defer s.Close()
		pts := []Point{s.NewPoint([]float64{1, 0}), s.NewPoint([]float64{0, 1}), s.NewPoint([]float64{2, 2})}
		if err := SampleBatchRanked(context.Background(), s, pts, 1.5, rank); err != nil {
			t.Fatal(err)
		}
		out := make([]Estimate, len(pts))
		for i, p := range pts {
			out[i] = p.Estimate()
		}
		return out
	}
	plain := run(nil)
	ranked := run(func(i int) int { return -i }) // reverse priority
	for i := range plain {
		if plain[i] != ranked[i] {
			t.Errorf("point %d: ranked estimate %+v differs from plain %+v", i, ranked[i], plain[i])
		}
	}
}
