// Package sim defines the sampling abstraction through which the optimization
// algorithms observe an objective function, mirroring the separation in the
// paper between the simplex logic (master) and the sampling simulations
// (workers/servers/clients).
//
// An optimizer never sees a function value directly; it sees a Point that can
// be sampled for additional virtual time and queried for its current Estimate
// (running mean plus the standard deviation of that mean). Backends decide how
// sampling is executed:
//
//   - LocalSpace runs sampling in-process, fanning each batch out over the
//     sched worker pool; it is used by unit tests, the experiments, and as
//     the leaf evaluator inside MW clients. Every point owns a private
//     deterministic noise stream, so concurrency never changes results.
//   - The mw package provides a Space that farms SampleAll batches out to
//     worker processes over the master-worker framework, reproducing the
//     paper's parallel deployment.
//
// Backends additionally implementing BatchSampler expose the concurrent,
// context-aware sampling path (SampleBatch) the optimizer prefers.
package sim

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/vtime"
)

// Sampling metrics (obs registry). Counted at batch granularity on the
// single success hook every sampling path funnels through
// (advanceBatch), so the per-draw overhead is two atomic adds amortized
// over the whole batch. sim_draws_total is the rate source for the
// draws/sec the paper's N comparisons are denominated in.
var (
	mDraws = obs.Default().Counter("sim_draws_total",
		"sampling increments performed (in-process and fleet)")
	mSampleBatches = obs.Default().Counter("sim_batches_total",
		"completed sampling batches across all spaces")
	mAdaptiveRounds = obs.Default().Counter("sim_adaptive_rounds_total",
		"variance-adaptive resampling growth rounds taken by SampleAdaptive")
)

// Estimate is the optimizer-visible state of a sampled point.
type Estimate struct {
	// Mean is the current running estimate of g(theta).
	Mean float64
	// Sigma is the standard deviation of Mean. Depending on the backend's
	// SigmaMode it is either the true sigma0/sqrt(t) or a batch estimate.
	Sigma float64
	// Time is the accumulated sampling time t of the point.
	Time float64
}

// Point is one location in parameter space with accumulated sampling state.
type Point interface {
	// X returns the coordinates of the point. Callers must not mutate the
	// returned slice.
	X() []float64
	// Estimate returns the current estimate of the objective at the point.
	Estimate() Estimate
	// Sample accrues dt more virtual seconds of sampling at this point and
	// advances the space's wall clock according to the backend's execution
	// model (a lone Sample is serial; use Space.SampleAll for concurrency).
	Sample(dt float64)
	// Close releases the resources (worker assignment, file handles)
	// associated with the point. The paper keeps objective evaluations
	// "active on each of the d+1 vertices until it is certain that they are
	// no longer needed"; Close is that certainty signal.
	Close()
}

// Space creates points and coordinates batch sampling.
type Space interface {
	// Dim returns the dimension of the parameter space.
	Dim() int
	// NewPoint starts an objective evaluation at x. The returned point has
	// zero sampling time; callers sample it before comparing estimates.
	NewPoint(x []float64) Point
	// SampleAll samples every point for dt virtual seconds. Backends that
	// model parallel hardware advance the wall clock by dt once for the
	// whole batch (all vertices sample concurrently, section 4.3); serial
	// backends advance it len(points)*dt.
	SampleAll(points []Point, dt float64)
	// Clock exposes the virtual wall clock for termination budgets and
	// trace timestamps.
	Clock() *vtime.Clock
	// Evaluations returns the cumulative number of sampling increments
	// performed, the cost unit used in the paper's N comparisons.
	Evaluations() int64
}

// BatchSampler is the optional concurrent face of a Space: SampleAll with a
// context. Backends that implement it execute the batch's per-point sampling
// concurrently (LocalSpace through the sched worker pool, mw.Space across its
// vertex workers) and honour cancellation between point dispatches. The
// virtual-clock semantics are identical to SampleAll.
type BatchSampler interface {
	// SampleBatch samples every point for dt virtual seconds, returning
	// ctx.Err() if the context is canceled before the batch completes. On a
	// non-nil error the batch is partial: some points may have accrued the
	// increment and the wall clock has not advanced.
	SampleBatch(ctx context.Context, points []Point, dt float64) error
}

// SampleBatch samples the batch through the space's concurrent path when it
// has one, else through plain SampleAll. It is the single entry point the
// optimizer uses, so every backend gains cancellation support as soon as it
// implements BatchSampler.
func SampleBatch(ctx context.Context, space Space, points []Point, dt float64) error {
	if bs, ok := space.(BatchSampler); ok {
		return bs.SampleBatch(ctx, points, dt)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	space.SampleAll(points, dt)
	return nil
}

// SigmaMode selects which noise estimate a backend reports to the optimizer.
type SigmaMode int

const (
	// SigmaKnown reports the true sigma0/sqrt(t) (the controlled-noise
	// studies of sections 3.2-3.3 inject noise of known strength).
	SigmaKnown SigmaMode = iota
	// SigmaEstimated reports a batch-statistics estimate, modelling real
	// applications where sigma0 "is not known ahead of time" (section 1.1).
	SigmaEstimated
)

// LocalConfig configures a LocalSpace.
type LocalConfig struct {
	// Dim is the parameter-space dimension.
	Dim int
	// F is the underlying deterministic objective.
	F func(x []float64) float64
	// Sigma0 returns the inherent noise strength at x. A nil Sigma0 means a
	// noiseless objective. The paper allows sigma0 to vary over parameter
	// space ("some models may be noisier than others").
	Sigma0 func(x []float64) float64
	// Seed seeds the deterministic noise stream.
	Seed int64
	// Mode selects true or estimated sigma reporting.
	Mode SigmaMode
	// Parallel, if true, advances the wall clock once per SampleAll batch
	// (concurrent vertices); if false each point's sampling is serialized
	// on the clock. This is a virtual-time accounting choice, independent of
	// Workers (the real CPU concurrency).
	Parallel bool
	// Workers bounds the real goroutine concurrency of batch sampling:
	// 0 picks automatically — serial in-caller execution when sampling is
	// cheap (no SampleCost; a noise draw is nanoseconds, cheaper than a
	// channel handoff), the process-wide shared scheduler (GOMAXPROCS
	// workers) when SampleCost is set. 1 forces serial execution, >= 2
	// gives the space its own worker pool of that size (release it with
	// Close). Because every point draws noise from a private per-point
	// stream, results are bitwise identical for every Workers setting.
	Workers int
	// SampleCost, if non-nil, is invoked once per sampling increment with
	// the point's coordinates and the increment dt, modelling the CPU cost
	// of the underlying simulation (an MD trajectory segment in the paper's
	// TIP4P study). The noise draw itself is nanoseconds; SampleCost is what
	// makes concurrent batch sampling pay off on real objectives, and what
	// the sched benchmarks exercise. It must be safe for concurrent calls.
	SampleCost func(x []float64, dt float64)
	// Pool, if non-nil, is an externally owned scheduler the space dispatches
	// its batches on, overriding Workers. Many spaces may share one Pool —
	// the jobs manager multiplexes every concurrent optimization over a
	// single worker fleet this way. The space never closes a shared Pool.
	Pool *sched.Scheduler
	// Tenant labels this space's batch submissions on the Pool, so a shared
	// scheduler can divide fleet capacity by tenant weight (weighted
	// fair-share, see sched.Policy). Empty means the scheduler's default
	// ("") queue. Tenancy only affects who waits, never what is sampled:
	// results stay bitwise identical for any Tenant labeling.
	Tenant string
	// Fleet, if non-nil, farms every batch's sampling increments out to a
	// remote worker fleet (internal/dist) instead of the in-process pool.
	// FleetObjective must name, in the workers' catalogs, the same function
	// F computes; results stay bitwise identical to in-process runs at any
	// fleet size and under worker death (see fleet.go). SampleCost is not
	// invoked locally in fleet mode — the simulation cost is the workers'.
	Fleet FleetSampler
	// FleetObjective names the objective remote workers evaluate. Required
	// when Fleet is set.
	FleetObjective string
}

// ConstSigma adapts a constant noise strength to the Sigma0 signature.
func ConstSigma(s float64) func([]float64) float64 {
	return func([]float64) float64 { return s }
}

// LocalSpace is the in-process sampling backend. Batch sampling fans out
// over a sched worker pool; every point owns a deterministic noise stream
// seeded from (space seed, creation index), so serial and concurrent
// execution produce bitwise-identical results.
type LocalSpace struct {
	cfg   LocalConfig
	clock vtime.Clock
	pool  *sched.Scheduler
	owned bool // pool belongs to this space and is closed by Close

	evals atomic.Int64

	mu         sync.Mutex
	nextStream int64
}

// NewLocalSpace builds an in-process sampling backend.
func NewLocalSpace(cfg LocalConfig) *LocalSpace {
	if cfg.Dim <= 0 {
		panic("sim: LocalConfig.Dim must be positive")
	}
	if cfg.F == nil {
		panic("sim: LocalConfig.F must be set")
	}
	if cfg.Fleet != nil && cfg.FleetObjective == "" {
		panic("sim: LocalConfig.Fleet requires FleetObjective")
	}
	s := &LocalSpace{cfg: cfg}
	switch {
	case cfg.Pool != nil:
		s.pool = cfg.Pool
	case cfg.Workers == 0 && cfg.SampleCost == nil:
		// Cheap sampling: pool dispatch would cost more than the noise
		// draws it parallelizes. A Workers=1 scheduler runs in-caller and
		// never starts goroutines, so no Close is needed.
		s.pool = sched.New(sched.Config{Workers: 1})
	case cfg.Workers == 0:
		s.pool = sched.Shared()
	default:
		s.pool = sched.New(sched.Config{Workers: cfg.Workers})
		s.owned = true
	}
	return s
}

// Close releases the space's worker pool when it owns one (Workers >= 1 in
// the config). Spaces on the shared scheduler need no Close.
func (s *LocalSpace) Close() {
	if s.owned {
		s.pool.Close()
	}
}

// Workers returns the real concurrency bound of batch sampling.
func (s *LocalSpace) Workers() int { return s.pool.Workers() }

// Dim implements Space.
func (s *LocalSpace) Dim() int { return s.cfg.Dim }

// Clock implements Space.
func (s *LocalSpace) Clock() *vtime.Clock { return &s.clock }

// Evaluations implements Space.
func (s *LocalSpace) Evaluations() int64 { return s.evals.Load() }

// NewPoint implements Space.
func (s *LocalSpace) NewPoint(x []float64) Point {
	if len(x) != s.cfg.Dim {
		panic("sim: NewPoint dimension mismatch")
	}
	xc := make([]float64, len(x))
	copy(xc, x)
	sigma0 := 0.0
	if s.cfg.Sigma0 != nil {
		sigma0 = s.cfg.Sigma0(xc)
	}
	s.mu.Lock()
	stream := s.nextStream
	s.nextStream++
	s.mu.Unlock()
	seed := sched.StreamSeed(s.cfg.Seed, stream)
	return &localPoint{
		space:     s,
		x:         xc,
		streamIdx: stream,
		seed:      seed,
		stream:    noise.NewStream(s.cfg.F(xc), sigma0, seed),
	}
}

// SampleAll implements Space. All points accrue dt of sampling; the wall
// clock advances dt once in parallel mode, len(points)*dt in serial mode.
// A failed batch (sampling on a closed space) panics, matching mw.Space.
func (s *LocalSpace) SampleAll(points []Point, dt float64) {
	// context.Background never cancels, so the only non-panic error left is
	// sched.ErrClosed — a use-after-Close, which must not pass silently.
	if err := s.SampleBatch(context.Background(), points, dt); err != nil {
		panic(fmt.Sprintf("sim: SampleAll: %v", err))
	}
}

// SampleBatch implements BatchSampler: the per-point sampling runs
// concurrently on the space's worker pool. On cancellation the wall clock
// does not advance and the batch is partial.
func (s *LocalSpace) SampleBatch(ctx context.Context, points []Point, dt float64) error {
	if len(points) == 0 {
		return ctx.Err()
	}
	if s.cfg.Fleet != nil {
		return s.sampleFleet(ctx, s.checkBatch(points), dt, nil)
	}
	// The in-process hot path validates in place and dispatches by index —
	// no []*localPoint staging slice, so a batch costs one closure plus the
	// pool's fixed dispatch overhead regardless of size.
	s.validateBatch(points)
	if err := s.pool.DoNAs(ctx, s.cfg.Tenant, len(points), func(i int) {
		points[i].(*localPoint).sample(dt)
	}); err != nil {
		return err
	}
	s.advanceBatch(len(points), dt)
	return nil
}

// validateBatch asserts every point is a live localPoint, without building
// the typed slice the fleet path needs.
func (s *LocalSpace) validateBatch(points []Point) {
	for _, p := range points {
		lp, ok := p.(*localPoint)
		if !ok {
			panic("sim: SampleAll received a foreign Point")
		}
		if lp.closed {
			panic("sim: Sample on closed point")
		}
	}
}

// checkBatch asserts every point is a live localPoint of this space.
func (s *LocalSpace) checkBatch(points []Point) []*localPoint {
	lps := make([]*localPoint, len(points))
	for i, p := range points {
		lp, ok := p.(*localPoint)
		if !ok {
			panic("sim: SampleAll received a foreign Point")
		}
		if lp.closed {
			panic("sim: Sample on closed point")
		}
		lps[i] = lp
	}
	return lps
}

// advanceBatch applies the virtual-clock accounting of one completed batch:
// dt once under the parallel execution model, n*dt serially.
func (s *LocalSpace) advanceBatch(n int, dt float64) {
	mSampleBatches.Inc()
	mDraws.Add(int64(n))
	if s.cfg.Parallel {
		s.clock.Advance(dt)
	} else {
		s.clock.Advance(float64(n) * dt)
	}
}

type localPoint struct {
	space     *LocalSpace
	x         []float64
	streamIdx int64
	seed      int64
	stream    *noise.Stream
	closed    bool
}

func (p *localPoint) X() []float64 { return p.x }

func (p *localPoint) Estimate() Estimate {
	sigma := p.stream.Sigma()
	if p.space.cfg.Mode == SigmaEstimated {
		sigma = p.stream.SigmaEst()
	}
	return Estimate{Mean: p.stream.Mean(), Sigma: sigma, Time: p.stream.Time()}
}

func (p *localPoint) Sample(dt float64) {
	if p.closed {
		panic("sim: Sample on closed point")
	}
	if p.space.cfg.Fleet != nil {
		// A lone Sample is a one-point fleet batch; like SampleAll, the only
		// non-panic failure (a dead fleet) must not pass silently.
		if err := p.space.sampleFleet(context.Background(), []*localPoint{p}, dt, nil); err != nil {
			panic(fmt.Sprintf("sim: Sample: %v", err))
		}
		return
	}
	p.sample(dt)
	mDraws.Inc()
	p.space.clock.Advance(dt)
}

// sample performs one increment: the (optional) simulated CPU cost, the
// noise draw from the point's private stream, and the evaluation count. It
// is the unit of work dispatched to the sched pool and touches no state
// shared across points except the atomic counter.
//
//optlint:noalloc
func (p *localPoint) sample(dt float64) {
	if p.closed {
		panic("sim: Sample on closed point")
	}
	if p.space.cfg.SampleCost != nil {
		p.space.cfg.SampleCost(p.x, dt)
	}
	p.stream.Sample(dt)
	p.space.evals.Add(1)
}

func (p *localPoint) Close() { p.closed = true }

// Underlying reports the noise-free objective value of a point when the
// backend knows it (LocalSpace does). Experiment harnesses use it for the R
// performance measure; optimizers must not.
func Underlying(p Point) (float64, bool) {
	if lp, ok := p.(*localPoint); ok {
		return lp.stream.Underlying(), true
	}
	return 0, false
}
