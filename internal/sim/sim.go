// Package sim defines the sampling abstraction through which the optimization
// algorithms observe an objective function, mirroring the separation in the
// paper between the simplex logic (master) and the sampling simulations
// (workers/servers/clients).
//
// An optimizer never sees a function value directly; it sees a Point that can
// be sampled for additional virtual time and queried for its current Estimate
// (running mean plus the standard deviation of that mean). Backends decide how
// sampling is executed:
//
//   - LocalSpace runs sampling in-process and is used by unit tests, the
//     sequential experiments, and as the leaf evaluator inside MW clients.
//   - The mw package provides a Space that farms SampleAll batches out to
//     worker processes over the master-worker framework, reproducing the
//     paper's parallel deployment.
package sim

import (
	"math/rand"
	"sync"

	"repro/internal/noise"
	"repro/internal/vtime"
)

// Estimate is the optimizer-visible state of a sampled point.
type Estimate struct {
	// Mean is the current running estimate of g(theta).
	Mean float64
	// Sigma is the standard deviation of Mean. Depending on the backend's
	// SigmaMode it is either the true sigma0/sqrt(t) or a batch estimate.
	Sigma float64
	// Time is the accumulated sampling time t of the point.
	Time float64
}

// Point is one location in parameter space with accumulated sampling state.
type Point interface {
	// X returns the coordinates of the point. Callers must not mutate the
	// returned slice.
	X() []float64
	// Estimate returns the current estimate of the objective at the point.
	Estimate() Estimate
	// Sample accrues dt more virtual seconds of sampling at this point and
	// advances the space's wall clock according to the backend's execution
	// model (a lone Sample is serial; use Space.SampleAll for concurrency).
	Sample(dt float64)
	// Close releases the resources (worker assignment, file handles)
	// associated with the point. The paper keeps objective evaluations
	// "active on each of the d+1 vertices until it is certain that they are
	// no longer needed"; Close is that certainty signal.
	Close()
}

// Space creates points and coordinates batch sampling.
type Space interface {
	// Dim returns the dimension of the parameter space.
	Dim() int
	// NewPoint starts an objective evaluation at x. The returned point has
	// zero sampling time; callers sample it before comparing estimates.
	NewPoint(x []float64) Point
	// SampleAll samples every point for dt virtual seconds. Backends that
	// model parallel hardware advance the wall clock by dt once for the
	// whole batch (all vertices sample concurrently, section 4.3); serial
	// backends advance it len(points)*dt.
	SampleAll(points []Point, dt float64)
	// Clock exposes the virtual wall clock for termination budgets and
	// trace timestamps.
	Clock() *vtime.Clock
	// Evaluations returns the cumulative number of sampling increments
	// performed, the cost unit used in the paper's N comparisons.
	Evaluations() int64
}

// SigmaMode selects which noise estimate a backend reports to the optimizer.
type SigmaMode int

const (
	// SigmaKnown reports the true sigma0/sqrt(t) (the controlled-noise
	// studies of sections 3.2-3.3 inject noise of known strength).
	SigmaKnown SigmaMode = iota
	// SigmaEstimated reports a batch-statistics estimate, modelling real
	// applications where sigma0 "is not known ahead of time" (section 1.1).
	SigmaEstimated
)

// LocalConfig configures a LocalSpace.
type LocalConfig struct {
	// Dim is the parameter-space dimension.
	Dim int
	// F is the underlying deterministic objective.
	F func(x []float64) float64
	// Sigma0 returns the inherent noise strength at x. A nil Sigma0 means a
	// noiseless objective. The paper allows sigma0 to vary over parameter
	// space ("some models may be noisier than others").
	Sigma0 func(x []float64) float64
	// Seed seeds the deterministic noise stream.
	Seed int64
	// Mode selects true or estimated sigma reporting.
	Mode SigmaMode
	// Parallel, if true, advances the wall clock once per SampleAll batch
	// (concurrent vertices); if false each point's sampling is serialized
	// on the clock.
	Parallel bool
}

// ConstSigma adapts a constant noise strength to the Sigma0 signature.
func ConstSigma(s float64) func([]float64) float64 {
	return func([]float64) float64 { return s }
}

// LocalSpace is the in-process sampling backend.
type LocalSpace struct {
	cfg   LocalConfig
	clock vtime.Clock

	mu    sync.Mutex
	rng   *rand.Rand
	evals int64
}

// NewLocalSpace builds an in-process sampling backend.
func NewLocalSpace(cfg LocalConfig) *LocalSpace {
	if cfg.Dim <= 0 {
		panic("sim: LocalConfig.Dim must be positive")
	}
	if cfg.F == nil {
		panic("sim: LocalConfig.F must be set")
	}
	return &LocalSpace{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Dim implements Space.
func (s *LocalSpace) Dim() int { return s.cfg.Dim }

// Clock implements Space.
func (s *LocalSpace) Clock() *vtime.Clock { return &s.clock }

// Evaluations implements Space.
func (s *LocalSpace) Evaluations() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evals
}

// NewPoint implements Space.
func (s *LocalSpace) NewPoint(x []float64) Point {
	if len(x) != s.cfg.Dim {
		panic("sim: NewPoint dimension mismatch")
	}
	xc := make([]float64, len(x))
	copy(xc, x)
	sigma0 := 0.0
	if s.cfg.Sigma0 != nil {
		sigma0 = s.cfg.Sigma0(xc)
	}
	return &localPoint{
		space: s,
		x:     xc,
		acc:   noise.NewAccumulator(s.cfg.F(xc), sigma0),
	}
}

// SampleAll implements Space. All points accrue dt of sampling; the wall
// clock advances dt once in parallel mode, len(points)*dt in serial mode.
func (s *LocalSpace) SampleAll(points []Point, dt float64) {
	if len(points) == 0 {
		return
	}
	for _, p := range points {
		lp, ok := p.(*localPoint)
		if !ok {
			panic("sim: SampleAll received a foreign Point")
		}
		lp.sampleNoClock(dt)
	}
	if s.cfg.Parallel {
		s.clock.Advance(dt)
	} else {
		s.clock.Advance(float64(len(points)) * dt)
	}
}

type localPoint struct {
	space  *LocalSpace
	x      []float64
	acc    *noise.Accumulator
	closed bool
}

func (p *localPoint) X() []float64 { return p.x }

func (p *localPoint) Estimate() Estimate {
	sigma := p.acc.Sigma()
	if p.space.cfg.Mode == SigmaEstimated {
		sigma = p.acc.SigmaEst()
	}
	return Estimate{Mean: p.acc.Mean(), Sigma: sigma, Time: p.acc.Time()}
}

func (p *localPoint) Sample(dt float64) {
	p.sampleNoClock(dt)
	p.space.clock.Advance(dt)
}

func (p *localPoint) sampleNoClock(dt float64) {
	if p.closed {
		panic("sim: Sample on closed point")
	}
	p.space.mu.Lock()
	p.acc.Sample(dt, p.space.rng)
	p.space.evals++
	p.space.mu.Unlock()
}

func (p *localPoint) Close() { p.closed = true }

// Underlying reports the noise-free objective value of a point when the
// backend knows it (LocalSpace does). Experiment harnesses use it for the R
// performance measure; optimizers must not.
func Underlying(p Point) (float64, bool) {
	if lp, ok := p.(*localPoint); ok {
		return lp.acc.Underlying(), true
	}
	return 0, false
}
