package sim

import (
	"math"
	"testing"

	"repro/internal/testfunc"
)

func newRosenSpace(parallel bool, sigma float64) *LocalSpace {
	return NewLocalSpace(LocalConfig{
		Dim:      3,
		F:        testfunc.Rosenbrock,
		Sigma0:   ConstSigma(sigma),
		Seed:     1,
		Parallel: parallel,
	})
}

func TestNewPointCopiesX(t *testing.T) {
	s := newRosenSpace(false, 0)
	x := []float64{1, 2, 3}
	p := s.NewPoint(x)
	x[0] = 99
	if p.X()[0] != 1 {
		t.Fatal("NewPoint did not copy coordinates")
	}
}

func TestNoiselessEstimate(t *testing.T) {
	s := newRosenSpace(false, 0)
	p := s.NewPoint([]float64{0, 0, 0})
	p.Sample(1)
	est := p.Estimate()
	want := testfunc.Rosenbrock([]float64{0, 0, 0})
	if est.Mean != want {
		t.Fatalf("Mean = %v, want %v", est.Mean, want)
	}
	if est.Sigma != 0 {
		t.Fatalf("Sigma = %v, want 0", est.Sigma)
	}
}

func TestSerialClockAdvance(t *testing.T) {
	s := newRosenSpace(false, 1)
	p1 := s.NewPoint([]float64{0, 0, 0})
	p2 := s.NewPoint([]float64{1, 1, 1})
	s.SampleAll([]Point{p1, p2}, 2.0)
	if got := s.Clock().Now(); got != 4.0 {
		t.Fatalf("serial clock = %v, want 4.0", got)
	}
}

func TestParallelClockAdvance(t *testing.T) {
	s := newRosenSpace(true, 1)
	p1 := s.NewPoint([]float64{0, 0, 0})
	p2 := s.NewPoint([]float64{1, 1, 1})
	p3 := s.NewPoint([]float64{2, 0, 1})
	s.SampleAll([]Point{p1, p2, p3}, 2.0)
	if got := s.Clock().Now(); got != 2.0 {
		t.Fatalf("parallel clock = %v, want 2.0", got)
	}
	for i, p := range []Point{p1, p2, p3} {
		if p.Estimate().Time != 2.0 {
			t.Fatalf("point %d sampling time = %v, want 2.0", i, p.Estimate().Time)
		}
	}
}

func TestSampleAllEmptyNoAdvance(t *testing.T) {
	s := newRosenSpace(true, 1)
	s.SampleAll(nil, 5)
	if got := s.Clock().Now(); got != 0 {
		t.Fatalf("clock moved on empty batch: %v", got)
	}
}

func TestEvaluationsCount(t *testing.T) {
	s := newRosenSpace(true, 1)
	p1 := s.NewPoint([]float64{0, 0, 0})
	p2 := s.NewPoint([]float64{1, 1, 1})
	s.SampleAll([]Point{p1, p2}, 1)
	p1.Sample(1)
	if got := s.Evaluations(); got != 3 {
		t.Fatalf("Evaluations = %v, want 3", got)
	}
}

func TestSigmaShrinksWithSampling(t *testing.T) {
	s := newRosenSpace(false, 100)
	p := s.NewPoint([]float64{0, 0, 0})
	p.Sample(1)
	s1 := p.Estimate().Sigma
	p.Sample(3) // t = 4
	s2 := p.Estimate().Sigma
	if math.Abs(s1-100) > 1e-9 || math.Abs(s2-50) > 1e-9 {
		t.Fatalf("sigma progression = %v, %v; want 100, 50", s1, s2)
	}
}

func TestEstimatedSigmaMode(t *testing.T) {
	s := NewLocalSpace(LocalConfig{
		Dim:    3,
		F:      testfunc.Rosenbrock,
		Sigma0: ConstSigma(10),
		Seed:   3,
		Mode:   SigmaEstimated,
	})
	p := s.NewPoint([]float64{0, 0, 0})
	for i := 0; i < 500; i++ {
		p.Sample(0.1)
	}
	est := p.Estimate()
	trueSigma := 10.0 / math.Sqrt(est.Time)
	if rel := math.Abs(est.Sigma-trueSigma) / trueSigma; rel > 0.25 {
		t.Fatalf("estimated sigma %v too far from true %v", est.Sigma, trueSigma)
	}
}

func TestClosedPointPanics(t *testing.T) {
	s := newRosenSpace(false, 1)
	p := s.NewPoint([]float64{0, 0, 0})
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Sample on closed point did not panic")
		}
	}()
	p.Sample(1)
}

func TestDimMismatchPanics(t *testing.T) {
	s := newRosenSpace(false, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("NewPoint with wrong dim did not panic")
		}
	}()
	s.NewPoint([]float64{1, 2})
}

func TestUnderlyingAccessor(t *testing.T) {
	s := newRosenSpace(false, 50)
	p := s.NewPoint([]float64{2, 2, 2})
	f, ok := Underlying(p)
	if !ok {
		t.Fatal("Underlying not available on localPoint")
	}
	if want := testfunc.Rosenbrock([]float64{2, 2, 2}); f != want {
		t.Fatalf("Underlying = %v, want %v", f, want)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() float64 {
		s := newRosenSpace(true, 10)
		p := s.NewPoint([]float64{0, 1, 2})
		for i := 0; i < 20; i++ {
			p.Sample(0.5)
		}
		return p.Estimate().Mean
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}
