package sim

import (
	"fmt"

	"repro/internal/noise"
	"repro/internal/sched"
)

// This file is the serialization face of the sampling layer: everything a
// checkpoint needs to rebuild a LocalSpace and its live points bitwise in a
// fresh process. The design leans on the same property that makes concurrent
// sampling deterministic — every point's noise is a pure function of
// (space seed, stream index, sampling history) — so a snapshot only has to
// record identities and accumulator numbers, never raw RNG internals: the RNG
// is reconstructed from its seed and fast-forwarded by the recorded draw
// count (noise.Stream.Restore).

// SpaceState is the serializable state of a LocalSpace: the virtual clock,
// the stream allocation cursor, and the evaluation counter. The objective
// function, noise law and seed are not part of the state — a restored space
// must be built from the same LocalConfig the original had (they are code,
// not data; the jobs layer reconstructs them from the job spec).
type SpaceState struct {
	// Clock is the virtual wall-clock reading.
	Clock float64 `json:"clock"`
	// NextStream is the next stream index NewPoint will allocate. Restoring
	// it guarantees points created after a resume draw from the same streams
	// they would have drawn from uninterrupted.
	NextStream int64 `json:"next_stream"`
	// Evals is the cumulative sampling-increment count.
	Evals int64 `json:"evals"`
}

// PointState is the serializable state of one live point: its coordinates,
// the index of its private noise stream, and the accumulator state. The
// noise-free value and sigma0 are recomputed from the coordinates on restore.
type PointState struct {
	// X holds the point's coordinates.
	X []float64 `json:"x"`
	// Stream is the point's stream index (seed = StreamSeed(spaceSeed, Stream)).
	Stream int64 `json:"stream"`
	// Noise is the accumulated sampling state.
	Noise noise.State `json:"noise"`
}

// Snapshotter is the optional checkpointing face of a Space. LocalSpace
// implements it; the mw backend does not (its points are live worker
// assignments, which the paper's own restart strategy rebuilds from scratch).
type Snapshotter interface {
	// ExportState snapshots the space-level counters.
	ExportState() SpaceState
	// RestoreState overwrites the space-level counters. It must be called on
	// a fresh space (no points created yet) built from the original config.
	RestoreState(SpaceState) error
	// ExportPoint snapshots one live point. It reads only; the point's RNG
	// position is unchanged.
	ExportPoint(Point) (PointState, error)
	// RestorePoint reconstructs a live point from its snapshot, replaying
	// the recorded number of noise draws so the next Sample observes exactly
	// what the original point would have observed.
	RestorePoint(PointState) (Point, error)
}

// ExportState implements Snapshotter.
func (s *LocalSpace) ExportState() SpaceState {
	s.mu.Lock()
	next := s.nextStream
	s.mu.Unlock()
	return SpaceState{Clock: s.clock.Now(), NextStream: next, Evals: s.evals.Load()}
}

// RestoreState implements Snapshotter.
func (s *LocalSpace) RestoreState(st SpaceState) error {
	if st.NextStream < 0 || st.Clock < 0 || st.Evals < 0 {
		return fmt.Errorf("sim: invalid space state %+v", st)
	}
	s.mu.Lock()
	s.nextStream = st.NextStream
	s.mu.Unlock()
	s.clock.Reset()
	s.clock.Advance(st.Clock)
	s.evals.Store(st.Evals)
	return nil
}

// ExportPoint implements Snapshotter.
func (s *LocalSpace) ExportPoint(p Point) (PointState, error) {
	lp, ok := p.(*localPoint)
	if !ok {
		return PointState{}, fmt.Errorf("sim: ExportPoint received a foreign Point %T", p)
	}
	if lp.closed {
		return PointState{}, fmt.Errorf("sim: ExportPoint on closed point")
	}
	return PointState{
		X:      append([]float64(nil), lp.x...),
		Stream: lp.streamIdx,
		Noise:  lp.stream.State(),
	}, nil
}

// RestorePoint implements Snapshotter.
func (s *LocalSpace) RestorePoint(st PointState) (Point, error) {
	if len(st.X) != s.cfg.Dim {
		return nil, fmt.Errorf("sim: RestorePoint dimension %d, want %d", len(st.X), s.cfg.Dim)
	}
	if st.Stream < 0 || st.Noise.N < 0 {
		return nil, fmt.Errorf("sim: invalid point state %+v", st)
	}
	xc := append([]float64(nil), st.X...)
	sigma0 := 0.0
	if s.cfg.Sigma0 != nil {
		sigma0 = s.cfg.Sigma0(xc)
	}
	seed := sched.StreamSeed(s.cfg.Seed, st.Stream)
	stream := noise.NewStream(s.cfg.F(xc), sigma0, seed)
	stream.Restore(st.Noise)
	return &localPoint{space: s, x: xc, streamIdx: st.Stream, seed: seed, stream: stream}, nil
}
