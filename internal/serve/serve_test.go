package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/serve"
)

// specJSON is a fast deterministic job: rosenbrock/pc, done in a few ms.
func specJSON(tenant string, seed int64) string {
	return fmt.Sprintf(`{"objective":"rosenbrock","dim":3,"algorithm":"pc","sigma0":50,"seed":%d,"tol":-1,"max_iterations":20,"tenant":%q}`, seed, tenant)
}

func startServer(t *testing.T, cfg jobs.Config) (*httptest.Server, *jobs.Manager) {
	t.Helper()
	mgr, err := jobs.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.New(serve.Config{Mgr: mgr, DefaultSeed: 1}))
	t.Cleanup(func() {
		ts.Close()
		mgr.Close()
	})
	return ts, mgr
}

func post(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode %s response: %v", url, err)
	}
	return resp.StatusCode, out
}

func get(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

// waitDone polls the status endpoint until the job is terminal.
func waitDone(t *testing.T, ts *httptest.Server, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var st map[string]any
		if code := get(t, ts.URL+"/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("status %s: code %d", id, code)
		}
		switch st["state"] {
		case "done", "failed", "canceled":
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return nil
}

// TestTenantRoutes: the tenant-scoped submit forces the path's namespace,
// the tenant list is scoped, /v1/tenants reports quota accounting, and a
// spec/path tenant conflict is rejected.
func TestTenantRoutes(t *testing.T) {
	ts, _ := startServer(t, jobs.Config{MaxConcurrent: 2})

	// Tenant-scoped submit with no tenant in the spec: path wins.
	code, body := post(t, ts.URL+"/v1/tenants/acme/jobs", specJSON("", 7))
	if code != http.StatusAccepted {
		t.Fatalf("tenant submit: code %d body %v", code, body)
	}
	acmeID := body["id"].(string)
	if st := waitDone(t, ts, acmeID); st["tenant"] != "acme" || st["state"] != "done" {
		t.Fatalf("tenant job status: %v", st)
	}

	// A different tenant via the flat endpoint, tenant named in the spec.
	code, body = post(t, ts.URL+"/v1/jobs", specJSON("globex", 8))
	if code != http.StatusAccepted {
		t.Fatalf("flat submit: code %d body %v", code, body)
	}
	waitDone(t, ts, body["id"].(string))

	// Conflicting spec/path tenants are a 400, not silent reassignment.
	code, body = post(t, ts.URL+"/v1/tenants/acme/jobs", specJSON("globex", 9))
	if code != http.StatusBadRequest || !strings.Contains(body["error"].(string), "conflicts") {
		t.Fatalf("tenant conflict: code %d body %v", code, body)
	}

	// The tenant-scoped list shows only acme's job.
	var scoped []map[string]any
	if code := get(t, ts.URL+"/v1/tenants/acme/jobs", &scoped); code != http.StatusOK {
		t.Fatalf("tenant list: code %d", code)
	}
	if len(scoped) != 1 || scoped[0]["id"] != acmeID {
		t.Fatalf("tenant list = %v, want just %s", scoped, acmeID)
	}

	// /v1/tenants reports both namespaces with balanced accounting.
	var tl struct {
		Tenants []jobs.TenantStats `json:"tenants"`
	}
	if code := get(t, ts.URL+"/v1/tenants", &tl); code != http.StatusOK {
		t.Fatalf("tenants: code %d", code)
	}
	names := make([]string, 0, len(tl.Tenants))
	for _, s := range tl.Tenants {
		names = append(names, s.Tenant)
		if s.Queued != 0 || s.Running != 0 {
			t.Fatalf("tenant %s accounting not drained: %+v", s.Tenant, s)
		}
	}
	if fmt.Sprint(names) != "[acme globex]" {
		t.Fatalf("tenant names = %v", names)
	}
}

// TestSubmitWithIDAndQuota: caller-chosen IDs via ?id= (the router's
// placement contract), duplicate rejection, and 429 on quota exhaustion.
func TestSubmitWithIDAndQuota(t *testing.T) {
	ts, _ := startServer(t, jobs.Config{
		MaxConcurrent: 1,
		DefaultQuota:  jobs.Quota{MaxQueued: 1},
		Objectives: map[string]func([]float64) float64{
			"slowsphere": func(x []float64) float64 {
				time.Sleep(500 * time.Microsecond)
				var s float64
				for _, v := range x {
					s += v * v
				}
				return s
			},
		},
	})

	blocker := `{"objective":"slowsphere","dim":3,"algorithm":"pc","sigma0":1,"seed":1,"tol":-1}`
	code, body := post(t, ts.URL+"/v1/jobs?id=shard0-j1", blocker)
	if code != http.StatusAccepted || body["id"] != "shard0-j1" {
		t.Fatalf("submit with id: code %d body %v", code, body)
	}
	// Reusing the ID is a 400 (invalid submission), not a new job.
	if code, body = post(t, ts.URL+"/v1/jobs?id=shard0-j1", blocker); code != http.StatusBadRequest {
		t.Fatalf("duplicate id: code %d body %v", code, body)
	}

	// One queued job fits the quota; the next is a 429.
	if code, body = post(t, ts.URL+"/v1/jobs?id=shard0-j2", blocker); code != http.StatusAccepted {
		t.Fatalf("queued submit: code %d body %v", code, body)
	}
	code, body = post(t, ts.URL+"/v1/jobs?id=shard0-j3", blocker)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: code %d body %v", code, body)
	}

	for _, id := range []string{"shard0-j1", "shard0-j2"} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		if resp, err := http.DefaultClient.Do(req); err != nil {
			t.Fatal(err)
		} else {
			resp.Body.Close()
		}
	}
}

// TestFailoverEndpoint: kill a manager with durable queued work, then adopt
// its store via POST /v1/failover on a second server and watch the job
// finish there.
func TestFailoverEndpoint(t *testing.T) {
	dir := t.TempDir()
	deadDir := filepath.Join(dir, "dead")
	if err := os.MkdirAll(deadDir, 0o755); err != nil {
		t.Fatal(err)
	}

	// First life: submit one durable job and close before it can run.
	m1, err := jobs.New(jobs.Config{MaxConcurrent: 1, CheckpointDir: deadDir, StoreKind: "wal"})
	if err != nil {
		t.Fatal(err)
	}
	blocker, err := m1.Submit(jobs.Spec{
		Objective: "rosenbrock", Dim: 3, Algorithm: "pc", Sigma0: 50,
		Seed: 41, Tol: -1, MaxIterations: 20, Tenant: "acme",
	})
	if err != nil {
		t.Fatal(err)
	}
	m1.Close()

	// Survivor: a fresh server with its own (file) store adopts the WAL.
	ts, _ := startServer(t, jobs.Config{MaxConcurrent: 2, CheckpointDir: filepath.Join(dir, "live")})
	code, body := post(t, ts.URL+"/v1/failover", fmt.Sprintf(`{"dir":%q,"store":"wal"}`, deadDir))
	if code != http.StatusOK {
		t.Fatalf("failover: code %d body %v", code, body)
	}
	adopted, _ := body["adopted"].([]any)
	if len(adopted) != 1 || adopted[0] != blocker {
		t.Fatalf("adopted = %v, want [%s]", body["adopted"], blocker)
	}
	if st := waitDone(t, ts, blocker); st["state"] != "done" || st["tenant"] != "acme" || st["resumed"] != true {
		t.Fatalf("adopted job status: %v", st)
	}

	// Bad requests: unknown store kind and missing dir are 400s.
	if code, _ := post(t, ts.URL+"/v1/failover", `{"dir":"x","store":"bolt"}`); code != http.StatusBadRequest {
		t.Fatalf("bad store kind: code %d", code)
	}
	if code, _ := post(t, ts.URL+"/v1/failover", `{}`); code != http.StatusBadRequest {
		t.Fatalf("missing dir: code %d", code)
	}
}

// TestMethodNotAllowed: the new paths answer wrong methods with 405 + Allow.
func TestMethodNotAllowed(t *testing.T) {
	ts, _ := startServer(t, jobs.Config{MaxConcurrent: 1})
	for path, allow := range map[string]string{
		"/v1/tenants":           "GET",
		"/v1/tenants/acme/jobs": "GET, POST",
		"/v1/failover":          "POST",
	} {
		var method string
		if strings.Contains(allow, "POST") && !strings.Contains(allow, "DELETE") {
			method = http.MethodDelete
		} else {
			method = http.MethodPut
		}
		req, err := http.NewRequest(method, ts.URL+path, bytes.NewReader(nil))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != allow {
			t.Fatalf("%s %s: code %d allow %q, want 405 %q", method, path, resp.StatusCode, resp.Header.Get("Allow"), allow)
		}
	}
}

// TestHealthzAndStrategies pins the readiness surface: store kind, tenant
// count and strategy listing all answer through the shared handler.
func TestHealthzAndStrategies(t *testing.T) {
	ts, _ := startServer(t, jobs.Config{
		MaxConcurrent: 1,
		CheckpointDir: t.TempDir(),
		StoreKind:     "wal",
	})
	if code, body := post(t, ts.URL+"/v1/tenants/acme/jobs", specJSON("", 7)); code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, body)
	}
	var health map[string]any
	if code := get(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if health["ok"] != true {
		t.Fatalf("healthz not ok: %v", health)
	}
	if health["store"] != "wal" {
		t.Fatalf("healthz store = %v, want wal", health["store"])
	}
	if n, ok := health["tenants"].(float64); !ok || n < 1 {
		t.Fatalf("healthz tenants = %v, want >= 1", health["tenants"])
	}
	var strategies map[string]any
	if code := get(t, ts.URL+"/strategies", &strategies); code != http.StatusOK {
		t.Fatalf("strategies: %d", code)
	}
	if _, ok := strategies["strategies"]; !ok {
		t.Fatalf("strategies payload missing list: %v", strategies)
	}
}
