// Package serve is the optd HTTP/JSON layer: it adapts a jobs.Manager
// (and optionally a dist.Coordinator fleet) to the REST surface cmd/optd
// exposes and the shard router (internal/shard) proxies. Extracted from
// cmd/optd so the router, the serve bench harness and tests can embed the
// exact production handler in-process.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/jobs"
	"repro/internal/jobstore"
	"repro/internal/obs"
)

// Config wires the handler's collaborators.
type Config struct {
	// Mgr is the job manager, required.
	Mgr *jobs.Manager
	// Fleet is the remote-worker coordinator when the server has one; its
	// status is served in /healthz. Nil without a fleet.
	Fleet *dist.Coordinator
	// DefaultSeed is applied to submitted specs that leave Seed zero, so
	// every job is reproducible from the server log plus its spec.
	DefaultSeed int64
	// Events, when non-nil, receives failover events.
	Events *obs.Logger
}

// server adapts a jobs.Manager to HTTP/JSON. Endpoints:
//
//	GET    /healthz                    readiness probe: build info, uptime,
//	                                   pool width, job/tenant counts, store kind
//	GET    /strategies                 the registered optimization strategies
//	POST   /v1/jobs                    submit a job (body: jobs.Spec) -> {"id": ...};
//	                                   ?id= submits under a caller-chosen ID
//	                                   (the shard router's placement contract)
//	GET    /v1/jobs                    list all jobs
//	GET    /v1/jobs/{id}               job status
//	GET    /v1/jobs/{id}/result        final result (409 until terminal)
//	GET    /v1/jobs/{id}/trace         NDJSON stream of progress events
//	POST   /v1/jobs/{id}/cancel        request cancellation
//	DELETE /v1/jobs/{id}               request cancellation (alias)
//	GET    /v1/tenants                 per-tenant quota accounting
//	POST   /v1/tenants/{tenant}/jobs   submit scoped to the tenant
//	GET    /v1/tenants/{tenant}/jobs   list the tenant's jobs
//	POST   /v1/failover                adopt a dead replica's job store
//	                                   (body: {"dir": ..., "store": ...})
//	GET    /metrics                    Prometheus text exposition
//	GET    /debug/pprof/...            net/http/pprof profiles
//
// Tenant-quota rejections map to 429. A known path with the wrong method
// returns 405 with an Allow header and a JSON error body, so load
// balancers and clients see a structured answer instead of the mux
// default.
type server struct {
	cfg Config
	// started anchors the /healthz uptime report.
	started time.Time
}

// New builds the HTTP handler.
func New(cfg Config) http.Handler {
	s := &server{cfg: cfg, started: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.health)
	mux.HandleFunc("GET /strategies", s.strategies)
	mux.HandleFunc("POST /v1/jobs", s.submit)
	mux.HandleFunc("GET /v1/jobs", s.list)
	mux.HandleFunc("GET /v1/jobs/{id}", s.status)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.result)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.trace)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.cancel)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancel)
	mux.HandleFunc("GET /v1/tenants", s.tenants)
	mux.HandleFunc("POST /v1/tenants/{tenant}/jobs", s.submit)
	mux.HandleFunc("GET /v1/tenants/{tenant}/jobs", s.list)
	mux.HandleFunc("POST /v1/failover", s.failover)
	obs.Default().RegisterDebug(mux)
	// Method-less fallbacks: less specific than the method patterns above,
	// they match only requests whose method is not served on that path.
	mux.HandleFunc("/healthz", MethodNotAllowed("GET"))
	mux.HandleFunc("/strategies", MethodNotAllowed("GET"))
	mux.HandleFunc("/v1/jobs", MethodNotAllowed("GET", "POST"))
	mux.HandleFunc("/v1/jobs/{id}", MethodNotAllowed("GET", "DELETE"))
	mux.HandleFunc("/v1/jobs/{id}/result", MethodNotAllowed("GET"))
	mux.HandleFunc("/v1/jobs/{id}/trace", MethodNotAllowed("GET"))
	mux.HandleFunc("/v1/jobs/{id}/cancel", MethodNotAllowed("POST"))
	mux.HandleFunc("/v1/tenants", MethodNotAllowed("GET"))
	mux.HandleFunc("/v1/tenants/{tenant}/jobs", MethodNotAllowed("GET", "POST"))
	mux.HandleFunc("/v1/failover", MethodNotAllowed("POST"))
	mux.HandleFunc("/metrics", MethodNotAllowed("GET"))
	return mux
}

// MethodNotAllowed builds the 405 handler for one path: the Allow header
// lists the methods the path does serve.
func MethodNotAllowed(allow ...string) http.HandlerFunc {
	allowed := strings.Join(allow, ", ")
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allowed)
		WriteJSON(w, http.StatusMethodNotAllowed, map[string]string{
			"error": fmt.Sprintf("method %s not allowed; allowed: %s", r.Method, allowed),
		})
	}
}

// WriteJSON sends one JSON response.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// WriteErr maps manager errors to HTTP statuses.
func WriteErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, jobs.ErrClosed):
		code = http.StatusServiceUnavailable
	case errors.Is(err, jobs.ErrQuotaExceeded), errors.Is(err, jobs.ErrRateLimited):
		code = http.StatusTooManyRequests
	}
	WriteJSON(w, code, map[string]string{"error": err.Error()})
}

// buildInfo extracts the Go toolchain version and VCS revision baked into
// the binary (empty when built without VCS stamping, e.g. in tests).
func buildInfo() (goVersion, revision string) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "", ""
	}
	goVersion = bi.GoVersion
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			revision = s.Value
		}
	}
	return goVersion, revision
}

func (s *server) health(w http.ResponseWriter, r *http.Request) {
	goVersion, revision := buildInfo()
	st := s.cfg.Mgr.Stats()
	body := map[string]any{
		"ok":             true,
		"uptime_seconds": time.Since(s.started).Seconds(),
		"go_version":     goVersion,
		"revision":       revision,
		"workers":        st.Workers,
		"max_concurrent": st.MaxConcurrent,
		"jobs": map[string]int{
			"queued":   st.Queued,
			"running":  st.Running,
			"done":     st.Done,
			"failed":   st.Failed,
			"canceled": st.Canceled,
		},
	}
	if st.Store != "" {
		body["store"] = st.Store
	}
	if st.Tenants > 0 {
		body["tenants"] = st.Tenants
	}
	if s.cfg.Fleet != nil {
		body["fleet"] = s.cfg.Fleet.Status()
	}
	body["metrics"] = obs.Default().Snapshot()
	WriteJSON(w, http.StatusOK, body)
}

// strategies lists what this server can run: every strategy in the core
// registry, with aliases and resumability (resumable strategies support
// durable checkpoint/recover across server restarts).
func (s *server) strategies(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, map[string]any{"strategies": core.StrategyInfos()})
}

// submit serves POST /v1/jobs and POST /v1/tenants/{tenant}/jobs. The
// tenant-scoped form forces the spec into the path's namespace (a spec
// naming a different tenant is rejected — the path is the authority). The
// optional ?id= query submits under a caller-chosen job ID; the shard
// router uses it so job placement is a pure function of the ID.
func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	var spec jobs.Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		WriteJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad spec: %v", err)})
		return
	}
	if tenant := r.PathValue("tenant"); tenant != "" {
		if spec.Tenant != "" && spec.Tenant != tenant {
			WriteJSON(w, http.StatusBadRequest, map[string]string{
				"error": fmt.Sprintf("spec tenant %q conflicts with path tenant %q", spec.Tenant, tenant),
			})
			return
		}
		spec.Tenant = tenant
	}
	if spec.Seed == 0 {
		spec.Seed = s.cfg.DefaultSeed
	}
	var id string
	var err error
	if want := r.URL.Query().Get("id"); want != "" {
		id, err = s.cfg.Mgr.SubmitWithID(want, spec)
	} else {
		id, err = s.cfg.Mgr.Submit(spec)
	}
	if err != nil {
		if errors.Is(err, jobs.ErrClosed) || errors.Is(err, jobs.ErrQuotaExceeded) || errors.Is(err, jobs.ErrRateLimited) {
			WriteErr(w, err)
			return
		}
		WriteJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	WriteJSON(w, http.StatusAccepted, map[string]string{"id": id})
}

// list serves GET /v1/jobs (all jobs) and GET /v1/tenants/{tenant}/jobs
// (that tenant's jobs only).
func (s *server) list(w http.ResponseWriter, r *http.Request) {
	all := s.cfg.Mgr.List()
	if tenant := r.PathValue("tenant"); tenant != "" {
		scoped := make([]jobs.Status, 0, len(all))
		for _, st := range all {
			if st.Tenant == tenant {
				scoped = append(scoped, st)
			}
		}
		all = scoped
	}
	WriteJSON(w, http.StatusOK, all)
}

func (s *server) tenants(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, map[string]any{"tenants": s.cfg.Mgr.Tenants()})
}

// failoverRequest is the POST /v1/failover body.
type failoverRequest struct {
	// Dir is the dead replica's store directory (shared or replicated
	// storage both replicas can reach).
	Dir string `json:"dir"`
	// Store is the store kind: "file" (default) or "wal".
	Store string `json:"store,omitempty"`
}

// failover adopts a dead replica's job store: every job recorded there is
// re-enqueued here (resuming from its last snapshot), exactly like the
// fleet coordinator re-dispatches a dead worker's tasks. The router calls
// this on the shard that inherits a dead shard's hash range.
func (s *server) failover(w http.ResponseWriter, r *http.Request) {
	var req failoverRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil || req.Dir == "" {
		WriteJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad failover request: %v", err)})
		return
	}
	st, err := jobstore.Open(req.Store, req.Dir)
	if err != nil {
		WriteJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	ids, err := s.cfg.Mgr.RecoverFrom(st)
	if err != nil && len(ids) == 0 {
		WriteErr(w, err)
		return
	}
	s.cfg.Events.Event("failover_adopt", "dir", req.Dir, "kind", st.Kind(), "jobs", len(ids))
	body := map[string]any{"adopted": ids}
	if err != nil {
		// Partial adoption: report what was recovered and what was not.
		body["error"] = err.Error()
	}
	WriteJSON(w, http.StatusOK, body)
}

func (s *server) status(w http.ResponseWriter, r *http.Request) {
	st, err := s.cfg.Mgr.Get(r.PathValue("id"))
	if err != nil {
		WriteErr(w, err)
		return
	}
	WriteJSON(w, http.StatusOK, st)
}

func (s *server) result(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := s.cfg.Mgr.Get(id)
	if err != nil {
		WriteErr(w, err)
		return
	}
	if !st.State.Terminal() {
		WriteJSON(w, http.StatusConflict, map[string]string{
			"error": fmt.Sprintf("job %s is %s", id, st.State),
		})
		return
	}
	res, err := s.cfg.Mgr.Result(id)
	if err != nil {
		if errors.Is(err, jobs.ErrNotFound) {
			// Evicted by retention churn between the two lookups.
			WriteErr(w, err)
			return
		}
		// Terminal without a result (failed, or canceled before starting):
		// surface the run error with the status.
		WriteJSON(w, http.StatusOK, map[string]any{"state": st.State, "error": err.Error()})
		return
	}
	WriteJSON(w, http.StatusOK, map[string]any{"state": st.State, "result": res})
}

func (s *server) cancel(w http.ResponseWriter, r *http.Request) {
	if err := s.cfg.Mgr.Cancel(r.PathValue("id")); err != nil {
		WriteErr(w, err)
		return
	}
	WriteJSON(w, http.StatusAccepted, map[string]string{"status": "canceling"})
}

// trace streams the job's progress as NDJSON: one jobs.Event per line,
// flushed per event, ending when the job reaches a terminal state or the
// client disconnects.
func (s *server) trace(w http.ResponseWriter, r *http.Request) {
	ch, cancel, err := s.cfg.Mgr.Subscribe(r.PathValue("id"))
	if err != nil {
		WriteErr(w, err)
		return
	}
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		select {
		case <-r.Context().Done():
			return
		case e, ok := <-ch:
			if !ok {
				return
			}
			if err := enc.Encode(e); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}
