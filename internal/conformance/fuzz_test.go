package conformance

import (
	"testing"

	"repro/internal/core"
)

// FuzzCheckpointResume lets the fuzzer choose the strategy, objective,
// driver mode, noise seed and snapshot position, then checks the
// checkpoint/resume determinism contract end to end: a run killed at the
// fuzzer-chosen iteration and resumed from its serialized snapshot (in a
// fresh space, at a different worker count) must reproduce the uninterrupted
// run's remaining trace and final result bitwise. The seed corpus covers
// every NM policy and every driver mode, so `go test` exercises the corpus
// as regression tests on every CI run; `go test -fuzz=FuzzCheckpointResume`
// explores beyond it.
func FuzzCheckpointResume(f *testing.F) {
	// One seed entry per NM policy, cycling objectives and modes, plus
	// mid-speculation and adaptive-floor positions.
	f.Add(uint8(0), uint8(0), uint8(0), int64(1), false, false)
	f.Add(uint8(1), uint8(1), uint8(3), int64(2), true, false)
	f.Add(uint8(2), uint8(2), uint8(5), int64(3), true, true)
	f.Add(uint8(3), uint8(0), uint8(7), int64(4), false, true)
	f.Add(uint8(4), uint8(1), uint8(9), int64(5), true, false)
	f.Add(uint8(2), uint8(0), uint8(1), int64(99), true, true)

	var nm []string
	for _, s := range core.Strategies() {
		if nmFamily(s) {
			nm = append(nm, s)
		}
	}

	f.Fuzz(func(t *testing.T, stratIdx, objIdx, snapIdx uint8, seed int64, speculative, adaptive bool) {
		const maxIter = 10
		c := traceCase{
			strategy:  nm[int(stratIdx)%len(nm)],
			objective: objectives[int(objIdx)%len(objectives)].name,
			dim:       objectives[int(objIdx)%len(objectives)].dim,
			mode:      mode{speculative: speculative, adaptive: adaptive},
		}
		full, snaps, wantRes := tracedRun(t, c, 1, maxIter, seed)
		if len(snaps) == 0 {
			t.Skip("run produced no snapshots")
		}
		i := int(snapIdx) % len(snaps)
		gotTrace, gotRes := resumeRun(t, c, 4, maxIter, seed, snaps[i])
		if gotRes != wantRes {
			t.Fatalf("%s seed=%d snapshot %d: resumed result differs:\n  want: %s  got:  %s",
				c.name(), seed, i+1, wantRes, gotRes)
		}
		if want := traceSuffix(full, i+1); gotTrace != want {
			t.Fatalf("%s seed=%d snapshot %d: resumed trace differs:\n%s",
				c.name(), seed, i+1, firstDiff(want, gotTrace))
		}
	})
}
