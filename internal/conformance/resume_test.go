package conformance

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
)

// This file is the checkpoint/resume half of the conformance contract: a run
// resumed from ANY snapshot — taken between any two iterations, in any driver
// mode, including runs whose steps speculate — must reproduce the
// uninterrupted run's trace and final result bitwise. The golden tests pin
// the uninterrupted trajectory; these tests pin that a kill/recover cycle is
// invisible.

// tracedRun executes one case at the given pool width and noise seed,
// capturing the rendered trace, a serialized snapshot per iteration, and the
// rendered result.
func tracedRun(tb testing.TB, c traceCase, workers, maxIter int, seed int64) (trace string, snaps [][]byte, result string) {
	tb.Helper()
	space := caseSpace(tb, c, workers, seed)
	defer space.Close()
	var b strings.Builder
	spec := caseSpec(c, func(e core.TraceEvent) { b.WriteString(formatEvent(e)) })
	spec.Config.MaxIterations = maxIter
	spec.Config.Checkpoint = func(s *core.Snapshot) {
		data, err := s.MarshalBinary()
		if err != nil {
			tb.Errorf("marshal snapshot: %v", err)
			return
		}
		snaps = append(snaps, data)
	}
	spec.Config.CheckpointEvery = 1
	res, err := core.Run(context.Background(), space, spec)
	if err != nil {
		tb.Fatalf("%s: %v", c.name(), err)
	}
	return b.String(), snaps, formatResult(res)
}

// resumeRun continues a case from a serialized snapshot on a fresh space and
// returns the post-resume trace and rendered result.
func resumeRun(tb testing.TB, c traceCase, workers, maxIter int, seed int64, raw []byte) (trace, result string) {
	tb.Helper()
	snap := new(core.Snapshot)
	if err := snap.UnmarshalBinary(raw); err != nil {
		tb.Fatalf("unmarshal snapshot: %v", err)
	}
	space := caseSpace(tb, c, workers, seed)
	defer space.Close()
	var b strings.Builder
	spec := caseSpec(c, func(e core.TraceEvent) { b.WriteString(formatEvent(e)) })
	spec.Config.MaxIterations = maxIter
	spec.Resume = snap
	res, err := core.Run(context.Background(), space, spec)
	if err != nil {
		tb.Fatalf("%s resume: %v", c.name(), err)
	}
	return b.String(), formatResult(res)
}

// traceSuffix drops the first n iteration lines (the pre-snapshot part of an
// uninterrupted trace).
func traceSuffix(trace string, n int) string {
	lines := strings.SplitAfter(trace, "\n")
	if n > len(lines) {
		n = len(lines)
	}
	return strings.Join(lines[n:], "")
}

// TestResumeExact resumes every NM-family strategy from every snapshot of a
// short run, in sequential, speculative and speculative+adaptive modes, at
// mixed worker counts, and requires the continuation to be bitwise identical
// to the uninterrupted run.
func TestResumeExact(t *testing.T) {
	const maxIter = 12
	for _, strat := range core.Strategies() {
		if !nmFamily(strat) {
			continue
		}
		for _, m := range []mode{seqMode, specMode, bothMode} {
			c := traceCase{strat, "rosenbrock", 3, m}
			c2 := c
			t.Run(c.name(), func(t *testing.T) {
				t.Parallel()
				full, snaps, wantRes := tracedRun(t, c2, 1, maxIter, defaultSeed)
				if len(snaps) == 0 {
					t.Fatal("no snapshots captured")
				}
				for i, raw := range snaps {
					// The resumed run uses a different pool width than the
					// original on purpose: worker count is not part of the
					// state.
					gotTrace, gotRes := resumeRun(t, c2, 4, maxIter, defaultSeed, raw)
					if gotRes != wantRes {
						t.Fatalf("snapshot %d: resumed result differs:\n  want: %s  got:  %s", i+1, wantRes, gotRes)
					}
					if want := traceSuffix(full, i+1); gotTrace != want {
						t.Fatalf("snapshot %d: resumed trace differs:\n%s", i+1, firstDiff(want, gotTrace))
					}
				}
			})
		}
	}
}
