// Package conformance is the cross-strategy conformance harness: golden-trace
// tests that pin the exact optimization trajectory of every registered
// strategy — the five NM decision policies, the particle swarm and the
// PSO→simplex hybrid — on a fixed set of testfunc objectives, at worker
// counts {1, 4, 8}, in every driver mode (sequential, speculative, adaptive,
// speculative+adaptive).
//
// Two properties are enforced:
//
//  1. Worker-count invariance: the trace (every iteration's time, best value,
//     best vertex, move and level, rendered with exact hexadecimal float
//     formatting) is bitwise identical at 1, 4 and 8 workers.
//  2. Trajectory stability: the trace matches the committed golden file, so
//     any change to the decision logic, the sampling schedule, the stream-seed
//     assignment or the virtual-clock accounting shows up as a reviewable
//     golden diff instead of a silent behavior change.
//
// Regenerate the goldens after an intentional trajectory change with:
//
//	go test ./internal/conformance -run TestGoldenTraces -update
package conformance

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/testfunc"

	// Register the pso and hybrid strategies alongside the NM family.
	_ "repro/internal/pso"
)

var update = flag.Bool("update", false, "regenerate golden trace files")

// workerCounts is the pool-width matrix every case must be invariant over.
var workerCounts = []int{1, 4, 8}

// objectives are the three testfunc objectives of the conformance matrix.
var objectives = []struct {
	name string
	dim  int
}{
	{"rosenbrock", 3},
	{"sphere", 2},
	{"beale", 2},
}

// mode selects the driver features a case runs with.
type mode struct {
	suffix      string // golden-file suffix, "" for the sequential driver
	speculative bool
	adaptive    bool
}

var (
	seqMode   = mode{}
	specMode  = mode{suffix: "spec", speculative: true}
	adaptMode = mode{suffix: "adaptive", adaptive: true}
	bothMode  = mode{suffix: "spec-adaptive", speculative: true, adaptive: true}
)

// traceCase is one cell of the conformance matrix.
type traceCase struct {
	strategy  string
	objective string
	dim       int
	mode      mode
}

func (c traceCase) name() string {
	n := fmt.Sprintf("%s-%s", strings.ReplaceAll(c.strategy, "+", "_"), c.objective)
	if c.mode.suffix != "" {
		n += "-" + c.mode.suffix
	}
	return n
}

// nmFamily reports whether a registered strategy is an NM-family simplex
// policy (the speculative/adaptive driver modes apply only to those).
func nmFamily(name string) bool {
	s, err := core.LookupStrategy(name)
	if err != nil {
		return false
	}
	_, ok := s.(core.AlgorithmStrategy)
	return ok
}

// matrix builds the full case table from the live strategy registry, so a
// newly registered strategy automatically joins the harness (and fails the
// golden test until its golden is committed).
func matrix() []traceCase {
	var cases []traceCase
	for _, strat := range core.Strategies() {
		for _, obj := range objectives {
			cases = append(cases, traceCase{strat, obj.name, obj.dim, seqMode})
			if nmFamily(strat) {
				cases = append(cases, traceCase{strat, obj.name, obj.dim, specMode})
			}
		}
		// Adaptive modes: one objective per strategy keeps the matrix
		// readable; worker invariance of the gate is already fully exercised.
		if nmFamily(strat) {
			cases = append(cases,
				traceCase{strat, "rosenbrock", 3, adaptMode},
				traceCase{strat, "rosenbrock", 3, bothMode},
			)
		}
	}
	return cases
}

// defaultSeed is the noise seed of the golden matrix; the fuzz harness
// explores others.
const defaultSeed = 101

// caseSpace builds the sampling backend of one case at the given pool width
// and noise seed.
func caseSpace(tb testing.TB, c traceCase, workers int, seed int64) *sim.LocalSpace {
	tb.Helper()
	f, err := testfunc.ByName(c.objective)
	if err != nil {
		tb.Fatalf("objective %q: %v", c.objective, err)
	}
	return sim.NewLocalSpace(sim.LocalConfig{
		Dim:      c.dim,
		F:        f.F,
		Sigma0:   sim.ConstSigma(0.5),
		Seed:     seed,
		Parallel: true,
		Workers:  workers,
	})
}

// caseSpec builds the run description of one case. Budgets are small: the
// harness pins trajectories, it does not chase optima.
func caseSpec(c traceCase, trace func(core.TraceEvent)) core.RunSpec {
	cfg := core.DefaultConfig(core.PC) // NM strategies pin their own policy
	cfg.MaxIterations = 30
	cfg.Speculative = c.mode.speculative
	if c.mode.adaptive {
		cfg.AdaptiveSamples = true
		cfg.AdaptiveHalfWidth = 0.25
	}
	cfg.Trace = trace
	return core.RunSpec{
		Strategy:   c.strategy,
		Config:     cfg,
		Seed:       7,
		Lo:         -3,
		Hi:         3,
		HasBox:     true,
		Particles:  8,
		SwarmIters: 12,
	}
}

// hex renders a float with exact (lossless) hexadecimal mantissa formatting,
// the representation the whole harness compares with: two traces match iff
// every float is bitwise identical.
func hex(v float64) string { return fmt.Sprintf("%x", v) }

func hexVec(xs []float64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = hex(x)
	}
	return strings.Join(parts, ",")
}

// formatEvent renders one trace line.
func formatEvent(e core.TraceEvent) string {
	return fmt.Sprintf("iter=%d move=%s level=%d time=%s best=%s underlying=%s spread=%s x=[%s]\n",
		e.Iter, e.Move, e.ContractionLevel, hex(e.Time), hex(e.Best), hex(e.BestUnderlying), hex(e.Spread), hexVec(e.BestX))
}

// formatResult renders the terminal summary line.
func formatResult(res *core.Result) string {
	return fmt.Sprintf("result term=%s iters=%d evals=%d walltime=%s bestG=%s bestX=[%s] moves=%+v waits=%d resamples=%d adaptive=%d waste=%d\n",
		res.Termination, res.Iterations, res.Evaluations, hex(res.Walltime), hex(res.BestG), hexVec(res.BestX),
		res.Moves, res.WaitRounds, res.ResampleRounds, res.AdaptiveRounds, res.SpeculativeWaste)
}

// runTrace executes one case at one pool width and returns its rendered
// trace.
func runTrace(tb testing.TB, c traceCase, workers int) string {
	tb.Helper()
	space := caseSpace(tb, c, workers, defaultSeed)
	defer space.Close()
	var b strings.Builder
	spec := caseSpec(c, func(e core.TraceEvent) { b.WriteString(formatEvent(e)) })
	res, err := core.Run(context.Background(), space, spec)
	if err != nil {
		tb.Fatalf("%s (workers=%d): %v", c.name(), workers, err)
	}
	b.WriteString(formatResult(res))
	return b.String()
}

func goldenPath(c traceCase) string {
	return filepath.Join("testdata", c.name()+".golden")
}

// TestGoldenTraces is the conformance gate: every strategy, objective and
// driver mode must produce a bitwise-identical trace at every worker count,
// matching the committed golden.
func TestGoldenTraces(t *testing.T) {
	for _, c := range matrix() {
		c := c
		t.Run(c.name(), func(t *testing.T) {
			t.Parallel()
			ref := runTrace(t, c, workerCounts[0])
			for _, w := range workerCounts[1:] {
				if got := runTrace(t, c, w); got != ref {
					t.Fatalf("trace at %d workers differs from %d workers:\n%s",
						w, workerCounts[0], firstDiff(ref, got))
				}
			}
			if *update {
				if err := os.WriteFile(goldenPath(c), []byte(ref), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath(c))
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update): %v", err)
			}
			if ref != string(want) {
				t.Fatalf("trace differs from golden %s (regenerate with -update if intended):\n%s",
					goldenPath(c), firstDiff(string(want), ref))
			}
		})
	}
}

// firstDiff renders the first differing line of two traces.
func firstDiff(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line count: want %d, got %d", len(wl), len(gl))
}

// TestMatrixCoversRegistry fails when a registered strategy has no
// conformance case, so new strategies cannot bypass the harness.
func TestMatrixCoversRegistry(t *testing.T) {
	covered := map[string]bool{}
	for _, c := range matrix() {
		covered[c.strategy] = true
	}
	for _, s := range core.Strategies() {
		if !covered[s] {
			t.Errorf("strategy %q has no conformance case", s)
		}
	}
}
