package conformance

import (
	"context"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/sim"
	"repro/internal/testfunc"
)

// This file is the cross-codec conformance gate: every golden trace in the
// matrix is replayed with sampling farmed over an in-process TCP fleet whose
// two sides disagree about the preferred frame codec — a JSON-ceiling
// coordinator with binary-offering workers, and a binary coordinator with
// JSON-only workers. Whatever codec the handshake lands on, the rendered
// trace must stay byte-identical to the committed golden, proving the wire
// format is invisible to the optimization trajectory.

// codecPairs are the mixed-codec fleet configurations under test. Both
// negotiate down to the JSON session codec from opposite directions; the
// all-binary path is exercised by the dist determinism tests and the process
// e2e, which CI runs under both DIST_PROTO values.
var codecPairs = []struct {
	name        string
	coordinator string // coordinator codec ceiling
	worker      string // worker codec policy
}{
	{"json-coordinator-binary-worker", "json", "auto"},
	{"binary-coordinator-json-worker", "binary", "json"},
}

// newCodecFleet starts a coordinator with the given codec ceiling and two
// registered agents with the given codec policy.
func newCodecFleet(t *testing.T, coordinatorProto, workerProto string) *dist.Coordinator {
	t.Helper()
	c := dist.NewCoordinator(dist.Config{Protocol: coordinatorProto})
	if err := c.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for _, name := range []string{"a", "b"} {
		w := dist.NewWorker(dist.WorkerConfig{
			Addr: c.Addr().String(), Name: name, Capacity: 2, Protocol: workerProto,
		})
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			w.Run(ctx)
		}()
		t.Cleanup(func() {
			cancel()
			<-done
		})
	}
	wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer wcancel()
	if err := c.WaitWorkers(wctx, 2); err != nil {
		t.Fatalf("agents did not register: %v", err)
	}
	return c
}

// runFleetTrace renders one case's trace with sampling over the fleet.
func runFleetTrace(tb testing.TB, c traceCase, fleet *dist.Coordinator) string {
	tb.Helper()
	f, err := testfunc.ByName(c.objective)
	if err != nil {
		tb.Fatalf("objective %q: %v", c.objective, err)
	}
	space := sim.NewLocalSpace(sim.LocalConfig{
		Dim:            c.dim,
		F:              f.F,
		Sigma0:         sim.ConstSigma(0.5),
		Seed:           defaultSeed,
		Parallel:       true,
		Workers:        1,
		Fleet:          fleet,
		FleetObjective: c.objective,
	})
	defer space.Close()
	var b strings.Builder
	spec := caseSpec(c, func(e core.TraceEvent) { b.WriteString(formatEvent(e)) })
	res, err := core.Run(context.Background(), space, spec)
	if err != nil {
		tb.Fatalf("%s over fleet: %v", c.name(), err)
	}
	b.WriteString(formatResult(res))
	return b.String()
}

// TestFleetCrossCodecGoldenTraces replays the full golden matrix over each
// mixed-codec fleet and requires byte identity with the committed goldens.
func TestFleetCrossCodecGoldenTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet replay skipped in -short mode")
	}
	for _, pair := range codecPairs {
		pair := pair
		t.Run(pair.name, func(t *testing.T) {
			fleet := newCodecFleet(t, pair.coordinator, pair.worker)
			for _, w := range fleet.Status().Workers {
				if w.Protocol != "json" {
					t.Fatalf("mixed-codec session for %s negotiated %q, want the json fallback",
						w.Name, w.Protocol)
				}
			}
			for _, c := range matrix() {
				c := c
				t.Run(c.name(), func(t *testing.T) {
					want, err := os.ReadFile(goldenPath(c))
					if err != nil {
						t.Fatalf("missing golden (regenerate with -update): %v", err)
					}
					if got := runFleetTrace(t, c, fleet); got != string(want) {
						t.Fatalf("fleet trace differs from golden %s:\n%s",
							goldenPath(c), firstDiff(string(want), got))
					}
				})
			}
		})
	}
}
