// Package vtime provides the virtual clock used by every experiment in this
// repository.
//
// The paper's noise model (eq 1.2) makes the variance of a sampled objective
// value depend only on the accumulated sampling time t of a vertex, with
// simplex updates occurring "on timescales of ~10^4 seconds in the late stages
// of the optimization". Reproducing that on a laptop requires decoupling the
// noise law from real seconds: a Clock counts virtual seconds of sampling and
// bookkeeping, so a run that the paper describes in CPU-hours executes in
// microseconds while obeying the exact same sigma^2 = sigma0^2/t law.
//
// The clock also models the parallel-sampling semantics of the MW framework:
// when d+3 vertices sample concurrently for dt seconds, wall time advances by
// dt once, not (d+3)*dt. Sequential backends may instead advance the clock
// per-point to model a serial machine; the choice belongs to the sim backend.
package vtime

import "fmt"

// Clock accumulates virtual seconds. The zero value is a clock at t=0.
//
// Clock is not safe for concurrent use; parallel backends must serialize
// advances (they represent a single global wall clock).
type Clock struct {
	now float64
}

// Now returns the current virtual time in seconds since the clock started.
func (c *Clock) Now() float64 { return c.now }

// Advance moves the clock forward by dt seconds. It panics if dt is negative,
// since virtual time, like wall time, never runs backwards.
func (c *Clock) Advance(dt float64) {
	if dt < 0 {
		panic(fmt.Sprintf("vtime: Advance(%v): negative duration", dt))
	}
	c.now += dt
}

// Reset rewinds the clock to zero. Experiments reuse clocks across repeated
// optimization runs with different seeds.
func (c *Clock) Reset() { c.now = 0 }

// Stopwatch measures a span of virtual time against a Clock.
type Stopwatch struct {
	clock *Clock
	start float64
}

// NewStopwatch starts a stopwatch at the clock's current time.
func NewStopwatch(c *Clock) *Stopwatch {
	return &Stopwatch{clock: c, start: c.Now()}
}

// Elapsed returns the virtual seconds since the stopwatch was started.
func (s *Stopwatch) Elapsed() float64 { return s.clock.Now() - s.start }

// Restart resets the stopwatch's origin to the clock's current time.
func (s *Stopwatch) Restart() { s.start = s.clock.Now() }
