package vtime

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if got := c.Now(); got != 0 {
		t.Fatalf("zero clock Now() = %v, want 0", got)
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	c.Advance(1.5)
	c.Advance(2.5)
	if got := c.Now(); got != 4.0 {
		t.Fatalf("Now() = %v, want 4.0", got)
	}
}

func TestClockReset(t *testing.T) {
	var c Clock
	c.Advance(10)
	c.Reset()
	if got := c.Now(); got != 0 {
		t.Fatalf("after Reset Now() = %v, want 0", got)
	}
}

func TestClockNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestClockZeroAdvanceAllowed(t *testing.T) {
	var c Clock
	c.Advance(0)
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
}

// Property: time is monotone non-decreasing under any sequence of
// non-negative advances, and equals their sum.
func TestClockMonotoneProperty(t *testing.T) {
	f := func(steps []float64) bool {
		var c Clock
		sum := 0.0
		prev := 0.0
		for _, s := range steps {
			dt := math.Abs(s)
			if math.IsInf(dt, 0) || math.IsNaN(dt) || dt > 1e12 {
				continue
			}
			c.Advance(dt)
			sum += dt
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return math.Abs(c.Now()-sum) <= 1e-9*math.Max(1, math.Abs(sum))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStopwatch(t *testing.T) {
	var c Clock
	c.Advance(5)
	sw := NewStopwatch(&c)
	c.Advance(3)
	if got := sw.Elapsed(); got != 3 {
		t.Fatalf("Elapsed() = %v, want 3", got)
	}
	sw.Restart()
	if got := sw.Elapsed(); got != 0 {
		t.Fatalf("after Restart Elapsed() = %v, want 0", got)
	}
	c.Advance(2)
	if got := sw.Elapsed(); got != 2 {
		t.Fatalf("Elapsed() = %v, want 2", got)
	}
}
