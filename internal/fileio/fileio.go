// Package fileio implements the worker-server communication conduit of the
// paper's two-level architecture (Figure 3.2: "The workers and their
// corresponding servers communicate via file I/O"). Each worker at the
// simplex level talks to its vertex server through a pair of one-directional
// file queues; the server talks to its simulation clients over MPI.
//
// Two implementations are provided behind one interface: the faithful
// file-backed conduit (messages are written to a spool directory with an
// atomic rename, exactly the write-then-rename pattern batch systems use to
// avoid partial reads), and an in-memory conduit for tests and for
// deployments where the file-system hop is unnecessary.
package fileio

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrClosed is returned after Close.
var ErrClosed = errors.New("fileio: conduit closed")

// Conduit is a bidirectional, ordered, reliable byte-message channel.
type Conduit interface {
	// Send enqueues one message to the peer.
	Send(data []byte) error
	// Recv blocks for the next message from the peer.
	Recv() ([]byte, error)
	// Close releases resources and unblocks pending Recvs on both ends.
	Close() error
}

// NewMemPair returns two connected in-memory conduit endpoints.
func NewMemPair() (Conduit, Conduit) {
	ab := make(chan []byte, 64)
	ba := make(chan []byte, 64)
	done := make(chan struct{})
	var once sync.Once
	closeFn := func() { once.Do(func() { close(done) }) }
	a := &memConduit{out: ab, in: ba, done: done, close: closeFn}
	b := &memConduit{out: ba, in: ab, done: done, close: closeFn}
	return a, b
}

type memConduit struct {
	out   chan []byte
	in    chan []byte
	done  chan struct{}
	close func()
}

func (c *memConduit) Send(data []byte) error {
	// Deterministic closed check first: a select with both a closed done
	// channel and free buffer space would pick randomly.
	select {
	case <-c.done:
		return ErrClosed
	default:
	}
	msg := append([]byte(nil), data...)
	select {
	case <-c.done:
		return ErrClosed
	case c.out <- msg:
		return nil
	}
}

func (c *memConduit) Recv() ([]byte, error) {
	select {
	case m := <-c.in: // drain queued messages even if closed afterwards
		return m, nil
	default:
	}
	select {
	case <-c.done:
		// One more non-blocking look: a message may have raced with Close.
		select {
		case m := <-c.in:
			return m, nil
		default:
			return nil, ErrClosed
		}
	case m := <-c.in:
		return m, nil
	}
}

func (c *memConduit) Close() error {
	c.close()
	return nil
}

// FilePairConfig tunes the file-backed conduit.
type FilePairConfig struct {
	// Dir is the spool directory. It is created if missing.
	Dir string
	// PollInterval is the receive-side polling period. Zero selects a
	// default suitable for tests (200 microseconds).
	PollInterval time.Duration
}

// NewFilePair creates two connected file-backed endpoints spooling through
// dir. Endpoint A writes to dir/a2b and reads dir/b2a; endpoint B is the
// mirror image.
func NewFilePair(cfg FilePairConfig) (Conduit, Conduit, error) {
	if cfg.Dir == "" {
		return nil, nil, errors.New("fileio: Dir is required")
	}
	if cfg.PollInterval == 0 {
		cfg.PollInterval = 200 * time.Microsecond
	}
	a2b := filepath.Join(cfg.Dir, "a2b")
	b2a := filepath.Join(cfg.Dir, "b2a")
	for _, d := range []string{a2b, b2a} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, nil, fmt.Errorf("fileio: %w", err)
		}
	}
	done := make(chan struct{})
	var once sync.Once
	closeFn := func() { once.Do(func() { close(done) }) }
	a := &fileConduit{outDir: a2b, inDir: b2a, poll: cfg.PollInterval, done: done, close: closeFn}
	b := &fileConduit{outDir: b2a, inDir: a2b, poll: cfg.PollInterval, done: done, close: closeFn}
	return a, b, nil
}

type fileConduit struct {
	outDir string
	inDir  string
	poll   time.Duration
	done   chan struct{}
	close  func()

	mu      sync.Mutex
	sendSeq int64
	recvSeq int64
}

const msgSuffix = ".msg"

func (c *fileConduit) Send(data []byte) error {
	select {
	case <-c.done:
		return ErrClosed
	default:
	}
	c.mu.Lock()
	seq := c.sendSeq
	c.sendSeq++
	c.mu.Unlock()
	tmp := filepath.Join(c.outDir, fmt.Sprintf("msg-%012d.tmp", seq))
	final := filepath.Join(c.outDir, fmt.Sprintf("msg-%012d%s", seq, msgSuffix))
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("fileio: %w", err)
	}
	// Atomic rename guarantees the reader never observes a partial message.
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("fileio: %w", err)
	}
	return nil
}

func (c *fileConduit) Recv() ([]byte, error) {
	for {
		c.mu.Lock()
		seq := c.recvSeq
		c.mu.Unlock()
		path := filepath.Join(c.inDir, fmt.Sprintf("msg-%012d%s", seq, msgSuffix))
		data, err := os.ReadFile(path)
		if err == nil {
			c.mu.Lock()
			c.recvSeq++
			c.mu.Unlock()
			if rmErr := os.Remove(path); rmErr != nil {
				return nil, fmt.Errorf("fileio: %w", rmErr)
			}
			return data, nil
		}
		if !os.IsNotExist(err) {
			return nil, fmt.Errorf("fileio: %w", err)
		}
		select {
		case <-c.done:
			// Final check for a message that raced with Close.
			if data, err := os.ReadFile(path); err == nil {
				c.mu.Lock()
				c.recvSeq++
				c.mu.Unlock()
				os.Remove(path)
				return data, nil
			}
			return nil, ErrClosed
		case <-time.After(c.poll):
		}
	}
}

func (c *fileConduit) Close() error {
	c.close()
	return nil
}

// WriteAtomic writes data to path with the same write-then-rename pattern the
// file conduit uses, so a reader (or a recovering process) never observes a
// partial file: the bytes land in a temporary file in the same directory,
// are synced, and are renamed over path in one atomic step. The jobs layer
// persists run checkpoints through it — a crash mid-write leaves the previous
// checkpoint intact.
func WriteAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("fileio: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("fileio: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fileio: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fileio: %w", err)
	}
	return nil
}

// PendingMessages reports the spooled-but-unread message files under dir,
// sorted; exposed for the directory-layout assertions in tests and for
// debugging stuck deployments.
func PendingMessages(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fileio: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), msgSuffix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}
