package fileio

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func pairs(t *testing.T) map[string]func() (Conduit, Conduit) {
	t.Helper()
	return map[string]func() (Conduit, Conduit){
		"mem": func() (Conduit, Conduit) {
			a, b := NewMemPair()
			return a, b
		},
		"file": func() (Conduit, Conduit) {
			a, b, err := NewFilePair(FilePairConfig{Dir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			return a, b
		},
	}
}

func TestRoundTripBothDirections(t *testing.T) {
	for name, mk := range pairs(t) {
		t.Run(name, func(t *testing.T) {
			a, b := mk()
			defer a.Close()
			if err := a.Send([]byte("from-a")); err != nil {
				t.Fatal(err)
			}
			got, err := b.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "from-a" {
				t.Fatalf("got %q", got)
			}
			if err := b.Send([]byte("from-b")); err != nil {
				t.Fatal(err)
			}
			got, err = a.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "from-b" {
				t.Fatalf("got %q", got)
			}
		})
	}
}

func TestOrderingPreserved(t *testing.T) {
	for name, mk := range pairs(t) {
		t.Run(name, func(t *testing.T) {
			a, b := mk()
			defer a.Close()
			const n = 30
			go func() {
				for i := 0; i < n; i++ {
					a.Send([]byte(fmt.Sprintf("msg-%03d", i)))
				}
			}()
			for i := 0; i < n; i++ {
				got, err := b.Recv()
				if err != nil {
					t.Errorf("recv %d: %v", i, err)
					return
				}
				want := fmt.Sprintf("msg-%03d", i)
				if string(got) != want {
					t.Errorf("position %d: got %q, want %q", i, got, want)
					return
				}
			}
		})
	}
}

func TestSendCopiesPayload(t *testing.T) {
	a, b := NewMemPair()
	defer a.Close()
	buf := []byte("original")
	if err := a.Send(buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "mutated!")
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("original")) {
		t.Fatalf("payload aliased: got %q", got)
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	for name, mk := range pairs(t) {
		t.Run(name, func(t *testing.T) {
			a, b := mk()
			errc := make(chan error, 1)
			go func() {
				_, err := b.Recv()
				errc <- err
			}()
			a.Close()
			if err := <-errc; err != ErrClosed {
				t.Fatalf("Recv after close = %v, want ErrClosed", err)
			}
			if err := a.Send([]byte("x")); err != ErrClosed {
				t.Fatalf("Send after close = %v, want ErrClosed", err)
			}
		})
	}
}

func TestQueuedMessagesDrainAfterClose(t *testing.T) {
	a, b := NewMemPair()
	if err := a.Send([]byte("queued")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	got, err := b.Recv()
	if err != nil {
		t.Fatalf("queued message lost after close: %v", err)
	}
	if string(got) != "queued" {
		t.Fatalf("got %q", got)
	}
}

func TestEmptyMessage(t *testing.T) {
	for name, mk := range pairs(t) {
		t.Run(name, func(t *testing.T) {
			a, b := mk()
			defer a.Close()
			if err := a.Send(nil); err != nil {
				t.Fatal(err)
			}
			got, err := b.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 0 {
				t.Fatalf("got %d bytes, want 0", len(got))
			}
		})
	}
}

func TestLargeMessage(t *testing.T) {
	for name, mk := range pairs(t) {
		t.Run(name, func(t *testing.T) {
			a, b := mk()
			defer a.Close()
			big := bytes.Repeat([]byte{0xAB}, 1<<20)
			go a.Send(big)
			got, err := b.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, big) {
				t.Fatal("large payload corrupted")
			}
		})
	}
}

func TestConcurrentBidirectionalTraffic(t *testing.T) {
	for name, mk := range pairs(t) {
		t.Run(name, func(t *testing.T) {
			a, b := mk()
			defer a.Close()
			const n = 50
			var wg sync.WaitGroup
			wg.Add(4)
			go func() {
				defer wg.Done()
				for i := 0; i < n; i++ {
					a.Send([]byte{byte(i)})
				}
			}()
			go func() {
				defer wg.Done()
				for i := 0; i < n; i++ {
					b.Send([]byte{byte(i)})
				}
			}()
			go func() {
				defer wg.Done()
				for i := 0; i < n; i++ {
					got, err := a.Recv()
					if err != nil || got[0] != byte(i) {
						t.Errorf("a recv %d: %v %v", i, got, err)
						return
					}
				}
			}()
			go func() {
				defer wg.Done()
				for i := 0; i < n; i++ {
					got, err := b.Recv()
					if err != nil || got[0] != byte(i) {
						t.Errorf("b recv %d: %v %v", i, got, err)
						return
					}
				}
			}()
			wg.Wait()
		})
	}
}

func TestFilePairRequiresDir(t *testing.T) {
	if _, _, err := NewFilePair(FilePairConfig{}); err == nil {
		t.Fatal("missing Dir accepted")
	}
}

func TestPendingMessages(t *testing.T) {
	dir := t.TempDir()
	a, _, err := NewFilePair(FilePairConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Send([]byte("one"))
	a.Send([]byte("two"))
	pending, err := PendingMessages(dir + "/a2b")
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 2 {
		t.Fatalf("pending = %v, want 2 entries", pending)
	}
	if pending[0] >= pending[1] {
		t.Fatalf("pending not sorted: %v", pending)
	}
}

func TestWriteAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := WriteAtomic(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := os.ReadFile(path); err != nil || string(got) != "v1" {
		t.Fatalf("read back %q, %v", got, err)
	}
	// Overwrite must replace the content atomically and leave no temp files.
	if err := WriteAtomic(path, []byte("v2 longer"), 0o600); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v2 longer" {
		t.Fatalf("overwrite read back %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
	if err := WriteAtomic(filepath.Join(dir, "missing", "x"), []byte("x"), 0o644); err == nil {
		t.Fatal("write into missing directory did not error")
	}
}
