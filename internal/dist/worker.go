package dist

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/testfunc"
)

// WorkerConfig configures a worker agent.
type WorkerConfig struct {
	// Addr is the coordinator's registration address ("host:9090").
	Addr string
	// Name labels the worker in fleet status (default "worker").
	Name string
	// Capacity is how many tasks the agent executes concurrently. Zero
	// selects 1.
	Capacity int
	// Objectives is the agent's objective catalog; nil selects the testfunc
	// catalog. Deployments with custom objectives register the same named
	// functions here that the job manager registers in jobs.Config.Objectives
	// — the coordinator cross-checks every returned value against its own,
	// so a divergent implementation fails the run instead of corrupting it.
	Objectives map[string]func(x []float64) float64
	// SampleCost, if non-nil, is invoked once per task with the coordinates
	// and increment, modelling the CPU cost of the underlying simulation —
	// the work the fleet exists to farm out. It must be safe for concurrent
	// calls.
	SampleCost func(x []float64, dt float64)
	// Dial overrides the connection to the coordinator (tests); nil dials
	// Addr over TCP.
	Dial func(ctx context.Context) (net.Conn, error)
	// Logf, if non-nil, receives operational messages (session failures,
	// reconnect delays). cmd/optworker wires it to stdout; nil is silent.
	Logf func(format string, args ...any)
}

// Worker is one remote sampling agent: it dials the coordinator, registers
// its capacity, heartbeats, and executes dispatched tasks. A task's result is
// a pure function of the task, so an agent holds no run state — it can join,
// die, or rejoin at any point of any run without affecting results.
type Worker struct {
	cfg        WorkerConfig
	objectives map[string]func([]float64) float64

	// streams caches RNG positions per stream seed, so consecutive draws of
	// one point cost one variate instead of a replay from zero. The cache is
	// pure optimization: a miss replays Skip draws from the seed, which is
	// the same sequence bit for bit.
	mu      sync.Mutex
	streams map[int64]*streamPos
}

// streamPos is a cached RNG with the number of draws it has produced.
type streamPos struct {
	rng *rand.Rand
	pos int
}

// maxCachedStreams bounds the draw cache; past it the cache resets (a safe,
// purely performance-affecting event).
const maxCachedStreams = 4096

// NewWorker builds a worker agent.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Capacity < 1 {
		cfg.Capacity = 1
	}
	if cfg.Name == "" {
		cfg.Name = "worker"
	}
	w := &Worker{cfg: cfg, streams: make(map[int64]*streamPos)}
	w.objectives = cfg.Objectives
	if w.objectives == nil {
		w.objectives = make(map[string]func([]float64) float64, len(testfunc.Catalog))
		for _, f := range testfunc.Catalog {
			w.objectives[f.Name] = f.F
		}
	}
	return w
}

// Run serves one connection to the coordinator: dial, register, execute
// dispatches until ctx ends or the connection fails. It returns nil on a
// ctx-initiated shutdown and the transport error otherwise.
func (w *Worker) Run(ctx context.Context) error {
	conn, err := w.dial(ctx)
	if err != nil {
		return err
	}
	defer conn.Close()

	var sendMu sync.Mutex
	send := func(m *Message) error {
		sendMu.Lock()
		defer sendMu.Unlock()
		return WriteFrame(conn, m)
	}
	if err := send(&Message{Type: TypeHello, Hello: &Hello{Name: w.cfg.Name, Capacity: w.cfg.Capacity}}); err != nil {
		return fmt.Errorf("dist: hello: %w", err)
	}
	var m Message
	if err := ReadFrame(conn, &m); err != nil {
		return fmt.Errorf("dist: welcome: %w", err)
	}
	if m.Type != TypeWelcome || m.Welcome == nil {
		return fmt.Errorf("dist: expected welcome, got %q", m.Type)
	}
	heartbeat := time.Duration(m.Welcome.HeartbeatMillis) * time.Millisecond
	if heartbeat <= 0 {
		heartbeat = time.Second
	}

	// Heartbeats and a ctx watchdog: closing the connection is what unblocks
	// the read loop on shutdown.
	done := make(chan struct{})
	defer close(done)
	go func() {
		ticker := time.NewTicker(heartbeat)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				conn.Close()
				return
			case <-ticker.C:
				if err := send(&Message{Type: TypeHeartbeat}); err != nil {
					return
				}
			}
		}
	}()

	// Execution pool: dispatched tasks run on up to Capacity goroutines;
	// each result is sent as soon as it lands, so a slow task never holds
	// back its batch-mates.
	sema := make(chan struct{}, w.cfg.Capacity)
	var tasks sync.WaitGroup
	defer func() {
		// A ctx-initiated shutdown is abrupt by design: in-flight tasks are
		// pure functions whose results the coordinator will obtain elsewhere,
		// so there is nothing worth draining. Transport-initiated exits wait,
		// keeping RunLoop's reconnect from racing its own task goroutines.
		if ctx.Err() == nil {
			tasks.Wait()
		}
	}()
	for {
		var m Message
		if err := ReadFrame(conn, &m); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("dist: read: %w", err)
		}
		if m.Type != TypeDispatch || m.Dispatch == nil {
			continue
		}
		for _, t := range m.Dispatch.Tasks {
			t := t
			sema <- struct{}{}
			tasks.Add(1)
			go func() {
				defer tasks.Done()
				defer func() { <-sema }()
				res := w.execute(t)
				if err := send(&Message{Type: TypeResults, Results: &Results{Results: []TaskResult{res}}}); err != nil {
					// A result that cannot be delivered (encode or transport
					// failure) must not strand the task: tear the session
					// down so the coordinator re-dispatches it.
					conn.Close()
				}
			}()
		}
	}
}

// RunLoop runs the agent with automatic reconnection until ctx ends: a lost
// coordinator (restart, network blip) costs a backoff, not the agent. The
// backoff resets after any session that actually served for a while, so a
// long-lived agent pays the minimum delay on each routine coordinator
// restart instead of ratcheting to the cap.
func (w *Worker) RunLoop(ctx context.Context) error {
	const (
		minBackoff = 100 * time.Millisecond
		maxBackoff = 5 * time.Second
	)
	backoff := minBackoff
	for {
		start := time.Now()
		err := w.Run(ctx)
		if ctx.Err() != nil {
			return nil
		}
		if time.Since(start) > time.Second {
			backoff = minBackoff // the session was healthy; this is a fresh outage
		}
		if w.cfg.Logf != nil {
			// A permanently failing session (wrong port, protocol mismatch)
			// must leave a trail, not just an empty fleet roster.
			if err == nil {
				err = errors.New("connection closed")
			}
			w.cfg.Logf("dist: worker session ended: %v (reconnecting in %s)", err, backoff)
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// dial connects to the coordinator.
func (w *Worker) dial(ctx context.Context) (net.Conn, error) {
	if w.cfg.Dial != nil {
		return w.cfg.Dial(ctx)
	}
	var d net.Dialer
	return d.DialContext(ctx, "tcp", w.cfg.Addr)
}

// execute runs one task: the objective evaluation (the expensive simulation
// being farmed out), the optional simulated sampling cost, and the
// deterministic draw.
func (w *Worker) execute(t Task) TaskResult {
	obj, ok := w.objectives[t.Objective]
	if !ok {
		return TaskResult{ID: t.ID, Err: fmt.Sprintf("unknown objective %q", t.Objective)}
	}
	f := obj(t.X)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		// JSON cannot carry non-finite floats; report the divergence as a
		// task error (plain string, always encodable) so the batch fails
		// loudly instead of the result frame failing to marshal.
		return TaskResult{ID: t.ID, Err: fmt.Sprintf("objective %q is non-finite (%v) at %v", t.Objective, f, t.X)}
	}
	if w.cfg.SampleCost != nil {
		w.cfg.SampleCost(t.X, t.Dt)
	}
	return TaskResult{ID: t.ID, Z: w.draw(t.Seed, t.Skip), F: f}
}

// draw returns the standard-normal variate at position skip of the stream
// seeded seed — the exact value noise.NewStream(..., seed) would produce as
// its (skip+1)-th draw. Sequential sampling of one point hits the cache and
// costs one variate; a re-dispatched or out-of-order task replays the stream
// from its seed, yielding the same bits.
func (w *Worker) draw(seed int64, skip int) float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	sp, ok := w.streams[seed]
	if !ok || sp.pos != skip {
		if len(w.streams) >= maxCachedStreams {
			w.streams = make(map[int64]*streamPos)
		}
		sp = &streamPos{rng: rand.New(rand.NewSource(seed))}
		for ; sp.pos < skip; sp.pos++ {
			sp.rng.NormFloat64()
		}
		w.streams[seed] = sp
	}
	z := sp.rng.NormFloat64()
	sp.pos++
	return z
}
