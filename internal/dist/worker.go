package dist

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/testfunc"
)

// WorkerConfig configures a worker agent.
type WorkerConfig struct {
	// Addr is the coordinator's registration address ("host:9090").
	Addr string
	// Addrs, when non-empty, lists fallback coordinator addresses (Addr
	// included or not — it is prepended if set). Each dial attempt tries
	// the next address in rotation, so a worker pointed at a sharded optd
	// deployment re-homes to a surviving shard's fleet when its own
	// coordinator dies. Safe because workers are stateless: a task result
	// is a pure function of the task, whichever coordinator sent it.
	Addrs []string
	// Name labels the worker in fleet status (default "worker").
	Name string
	// Capacity is how many tasks the agent executes concurrently. Zero
	// selects 1.
	Capacity int
	// Objectives is the agent's objective catalog; nil selects the testfunc
	// catalog. Deployments with custom objectives register the same named
	// functions here that the job manager registers in jobs.Config.Objectives
	// — the coordinator cross-checks every returned value against its own,
	// so a divergent implementation fails the run instead of corrupting it.
	Objectives map[string]func(x []float64) float64
	// SampleCost, if non-nil, is invoked once per task with the coordinates
	// and increment, modelling the CPU cost of the underlying simulation —
	// the work the fleet exists to farm out. It must be safe for concurrent
	// calls.
	SampleCost func(x []float64, dt float64)
	// Protocol selects the frame codec: "auto" (or empty) offers the binary
	// codec and accepts whatever the coordinator grants, "binary" requires
	// the binary codec (the session fails if the coordinator only speaks
	// JSON), "json" offers nothing and stays on the JSON fallback.
	Protocol string
	// Dial overrides the connection to the coordinator (tests); nil dials
	// Addr over TCP.
	Dial func(ctx context.Context) (net.Conn, error)
	// Events, when non-nil, receives structured agent events
	// (codec_negotiated after each handshake, session_end with the error
	// and reconnect delay). Takes precedence over Logf.
	Events *obs.Logger
	// Logf, if non-nil and Events is nil, receives the same events
	// rendered as flat printf lines — the legacy sink, kept so existing
	// call sites compile and keep their output. nil is silent.
	Logf func(format string, args ...any)
}

// Worker is one remote sampling agent: it dials the coordinator, registers
// its capacity, heartbeats, and executes dispatched tasks. A task's result is
// a pure function of the task, so an agent holds no run state — it can join,
// die, or rejoin at any point of any run without affecting results.
type Worker struct {
	cfg        WorkerConfig
	addrs      []string    // coordinator addresses, dialed in rotation
	dialIdx    int         // next addrs entry to dial; only touched from Run's goroutine
	events     *obs.Logger // cfg.Events, or cfg.Logf wrapped; nil-safe
	objectives map[string]func([]float64) float64

	// streams caches RNG positions per stream seed, so consecutive draws of
	// one point cost one variate instead of a replay from zero. The cache is
	// pure optimization: a miss replays Skip draws from the seed, which is
	// the same sequence bit for bit.
	mu      sync.Mutex
	streams map[int64]*streamPos
}

// streamPos is a cached RNG with the number of draws it has produced. Each
// entry carries its own lock so a cache-miss replay — thousands of discarded
// variates for a far-ahead skip — serializes only tasks of the same stream,
// not the whole agent.
type streamPos struct {
	mu  sync.Mutex
	rng *rand.Rand
	pos int
}

// maxCachedStreams bounds the draw cache; past it the cache resets (a safe,
// purely performance-affecting event).
const maxCachedStreams = 4096

// NewWorker builds a worker agent. It panics on an unknown Protocol — a
// misconfigured agent must fail at startup, not negotiate something
// surprising.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Capacity < 1 {
		cfg.Capacity = 1
	}
	if cfg.Name == "" {
		cfg.Name = "worker"
	}
	if cfg.Protocol == "" {
		cfg.Protocol = "auto"
	}
	if cfg.Protocol != "auto" {
		if _, err := ParseProto(cfg.Protocol); err != nil {
			panic(err)
		}
	}
	w := &Worker{cfg: cfg, streams: make(map[int64]*streamPos)}
	if cfg.Addr != "" {
		w.addrs = append(w.addrs, cfg.Addr)
	}
	for _, a := range cfg.Addrs {
		if a != "" && a != cfg.Addr {
			w.addrs = append(w.addrs, a)
		}
	}
	w.events = cfg.Events
	if w.events == nil {
		w.events = obs.NewFuncLogger(cfg.Logf)
	}
	w.objectives = cfg.Objectives
	if w.objectives == nil {
		w.objectives = make(map[string]func([]float64) float64, len(testfunc.Catalog))
		for _, f := range testfunc.Catalog {
			w.objectives[f.Name] = f.F
		}
	}
	return w
}

// Run serves one connection to the coordinator: dial, register, execute
// dispatches until ctx ends or the connection fails. It returns nil on a
// ctx-initiated shutdown and the transport error otherwise.
func (w *Worker) Run(ctx context.Context) error {
	conn, err := w.dial(ctx)
	if err != nil {
		return err
	}
	defer conn.Close()

	// The handshake is always JSON: hello offers the codecs this agent
	// speaks, welcome announces the one the session will use.
	var protos []string
	if w.cfg.Protocol != "json" {
		protos = []string{ProtoBinary.String()}
	}
	if err = WriteFrame(conn, &Message{Type: TypeHello, Hello: &Hello{
		Name:     w.cfg.Name,
		Capacity: w.cfg.Capacity,
		Protos:   protos,
	}}); err != nil {
		return fmt.Errorf("dist: hello: %w", err)
	}
	var m Message
	if err = ReadFrame(conn, &m); err != nil {
		return fmt.Errorf("dist: welcome: %w", err)
	}
	if m.Type != TypeWelcome || m.Welcome == nil {
		return fmt.Errorf("dist: expected welcome, got %q", m.Type)
	}
	proto := ProtoJSON
	if m.Welcome.Proto != "" {
		if proto, err = ParseProto(m.Welcome.Proto); err != nil {
			return fmt.Errorf("dist: welcome: %w", err)
		}
	}
	if proto != ProtoJSON && w.cfg.Protocol == "json" {
		return fmt.Errorf("dist: coordinator granted %q, which this agent never offered", proto)
	}
	if proto != ProtoBinary && w.cfg.Protocol == "binary" {
		// -proto binary is a deployment assertion: fail the session loudly
		// instead of silently paying the JSON fallback forever.
		return fmt.Errorf("dist: coordinator fell back to %q but this agent requires the binary protocol", proto)
	}
	heartbeat := time.Duration(m.Welcome.HeartbeatMillis) * time.Millisecond
	if heartbeat <= 0 {
		heartbeat = time.Second
	}
	mWorkerSessions.Inc()
	w.events.Event("codec_negotiated",
		"worker", m.Welcome.Worker, "proto", proto, "heartbeat", heartbeat)

	fw := NewFrameWriter(conn, proto)
	var sendMu sync.Mutex
	send := func(m *Message) error {
		sendMu.Lock()
		defer sendMu.Unlock()
		return fw.Write(m)
	}

	// Heartbeats and a ctx watchdog: closing the connection is what unblocks
	// the read loop on shutdown.
	done := make(chan struct{})
	defer close(done)
	go func() {
		ticker := time.NewTicker(heartbeat)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				conn.Close()
				return
			case <-ticker.C:
				if err := send(&Message{Type: TypeHeartbeat}); err != nil {
					return
				}
			}
		}
	}()

	// Execution pool: Capacity executor goroutines drain a FIFO task queue
	// sized for the coordinator's pipeline, so the agent always holds queued
	// work while executing — finishing a task starts the next one
	// immediately instead of idling for a dispatch round-trip. Each result is
	// sent as soon as it lands, so a slow task never holds back its
	// batch-mates, and the read loop never blocks on execution capacity.
	// FIFO handoff keeps execution in dispatch order (a capacity-1 agent runs
	// tasks exactly in the coordinator's priority order, pipeline or not).
	taskq := make(chan Task, pipelineDepth*w.cfg.Capacity)
	var tasks sync.WaitGroup
	for i := 0; i < w.cfg.Capacity; i++ {
		go func() {
			var res Results
			out := Message{Type: TypeResults, Results: &res}
			for t := range taskq {
				// During a ctx-initiated shutdown leftover tasks are skipped,
				// not executed: the coordinator will obtain their results
				// elsewhere.
				if ctx.Err() == nil {
					if cap(res.Results) == 0 {
						res.Results = make([]TaskResult, 1)
					}
					res.Results = res.Results[:1]
					res.Results[0] = w.execute(t)
					if err := send(&out); err != nil {
						// A result that cannot be delivered (encode or
						// transport failure) must not strand the task: tear
						// the session down so the coordinator re-dispatches
						// it.
						conn.Close()
					}
				}
				tasks.Done()
			}
		}()
	}
	defer func() {
		// Stop the executors (the read loop is the only sender). A
		// ctx-initiated shutdown is abrupt by design; transport-initiated
		// exits wait for in-flight tasks, keeping RunLoop's reconnect from
		// racing its own executors.
		close(taskq)
		if ctx.Err() == nil {
			tasks.Wait()
		}
	}()
	fr := NewFrameReader(conn, proto)
	for {
		var m Message
		if err := fr.Read(&m); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("dist: read: %w", err)
		}
		if m.Type != TypeDispatch || m.Dispatch == nil {
			continue
		}
		for _, t := range m.Dispatch.Tasks {
			tasks.Add(1)
			taskq <- t
		}
	}
}

// RunLoop runs the agent with automatic reconnection until ctx ends: a lost
// coordinator (restart, network blip) costs a backoff, not the agent. The
// backoff resets after any session that actually served for a while, so a
// long-lived agent pays the minimum delay on each routine coordinator
// restart instead of ratcheting to the cap.
func (w *Worker) RunLoop(ctx context.Context) error {
	const (
		minBackoff = 100 * time.Millisecond
		maxBackoff = 5 * time.Second
	)
	backoff := minBackoff
	for {
		start := time.Now() //optlint:nondeterministic-ok reconnect backoff bookkeeping, never reaches a sample
		err := w.Run(ctx)
		if ctx.Err() != nil {
			return nil
		}
		if time.Since(start) > time.Second { //optlint:nondeterministic-ok reconnect backoff bookkeeping, never reaches a sample
			backoff = minBackoff // the session was healthy; this is a fresh outage
		}
		// A permanently failing session (wrong port, protocol mismatch)
		// must leave a trail, not just an empty fleet roster.
		if err == nil {
			err = errors.New("connection closed")
		}
		w.events.Event("session_end", "err", err, "reconnect_in", backoff)
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// dial connects to the coordinator. With multiple configured addresses it
// rotates: each attempt (so each RunLoop reconnect) tries the next one, and
// a successful session leaves the rotation parked on the address that
// worked, so a healthy coordinator keeps its workers until it actually
// fails.
func (w *Worker) dial(ctx context.Context) (net.Conn, error) {
	if w.cfg.Dial != nil {
		return w.cfg.Dial(ctx)
	}
	if len(w.addrs) == 0 {
		return nil, errors.New("dist: no coordinator address configured")
	}
	addr := w.addrs[w.dialIdx%len(w.addrs)]
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		w.dialIdx++ // next attempt tries the next coordinator
		return nil, err
	}
	return conn, nil
}

// execute runs one task: the objective evaluation (the expensive simulation
// being farmed out), the optional simulated sampling cost, and the
// deterministic draw.
func (w *Worker) execute(t Task) TaskResult {
	mWorkerTasks.Inc()
	obj, ok := w.objectives[t.Objective]
	if !ok {
		return TaskResult{ID: t.ID, Err: fmt.Sprintf("unknown objective %q", t.Objective)}
	}
	f := obj(t.X)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		// JSON cannot carry non-finite floats; report the divergence as a
		// task error (plain string, always encodable) so the batch fails
		// loudly instead of the result frame failing to marshal.
		return TaskResult{ID: t.ID, Err: fmt.Sprintf("objective %q is non-finite (%v) at %v", t.Objective, f, t.X)}
	}
	if w.cfg.SampleCost != nil {
		w.cfg.SampleCost(t.X, t.Dt)
	}
	return TaskResult{ID: t.ID, Z: w.draw(t.Seed, t.Skip), F: f}
}

// draw returns the standard-normal variate at position skip of the stream
// seeded seed — the exact value noise.NewStream(..., seed) would produce as
// its (skip+1)-th draw. Sequential sampling of one point hits the cache and
// costs one variate; a re-dispatched or out-of-order task replays the stream
// from its seed, yielding the same bits.
func (w *Worker) draw(seed int64, skip int) float64 {
	// The global lock covers only the map lookup; the (possibly long) replay
	// runs under the stream's own lock. A cache reset may orphan an entry
	// another task still holds — harmless, both entries replay the same pure
	// sequence.
	w.mu.Lock()
	sp, ok := w.streams[seed]
	if !ok {
		if len(w.streams) >= maxCachedStreams {
			w.streams = make(map[int64]*streamPos)
		}
		sp = &streamPos{}
		w.streams[seed] = sp
	}
	w.mu.Unlock()

	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.rng == nil || sp.pos != skip {
		sp.rng = rand.New(rand.NewSource(seed))
		sp.pos = 0
		for ; sp.pos < skip; sp.pos++ {
			sp.rng.NormFloat64()
		}
	}
	z := sp.rng.NormFloat64()
	sp.pos++
	return z
}
