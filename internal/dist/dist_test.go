package dist

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/testfunc"
)

// newTestCoordinator starts a coordinator on a loopback port.
func newTestCoordinator(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	c := NewCoordinator(cfg)
	if err := c.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// startWorker runs an agent against the coordinator and returns an
// idempotent stop function (also registered as cleanup). The agent is fully
// registered when startWorker returns.
func startWorker(t *testing.T, c *Coordinator, cfg WorkerConfig) (stop func()) {
	t.Helper()
	before := c.Workers()
	cfg.Addr = c.Addr().String()
	w := NewWorker(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	waitCtx, waitCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer waitCancel()
	if err := c.WaitWorkers(waitCtx, before+1); err != nil {
		t.Fatalf("worker did not register: %v", err)
	}
	var once sync.Once
	stop = func() {
		once.Do(func() {
			cancel()
			<-done
		})
	}
	t.Cleanup(stop)
	return stop
}

// expectedDraw replays the reference stream: the value every correct fleet
// execution of (seed, skip) must return.
func expectedDraw(seed int64, skip int) float64 {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < skip; i++ {
		rng.NormFloat64()
	}
	return rng.NormFloat64()
}

// TestFleetSampleMatchesLocalDraws is the core correctness property: a batch
// spread over two agents returns, for every request, exactly the draw and
// objective value a local execution would produce.
func TestFleetSampleMatchesLocalDraws(t *testing.T) {
	c := newTestCoordinator(t, Config{})
	startWorker(t, c, WorkerConfig{Name: "a", Capacity: 2})
	startWorker(t, c, WorkerConfig{Name: "b", Capacity: 2})

	rng := rand.New(rand.NewSource(3))
	reqs := make([]sim.FleetRequest, 40)
	for i := range reqs {
		x := []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2, rng.Float64()*4 - 2}
		reqs[i] = sim.FleetRequest{
			Objective: "rosenbrock",
			X:         x,
			Seed:      rng.Int63(),
			Skip:      rng.Intn(6),
			Dt:        0.1,
			Priority:  rng.Intn(3),
		}
	}
	res, err := c.SampleFleet(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if want := expectedDraw(reqs[i].Seed, reqs[i].Skip); r.Z != want {
			t.Errorf("req %d: Z = %x, want %x", i, r.Z, want)
		}
		if want := testfunc.Rosenbrock(reqs[i].X); r.F != want {
			t.Errorf("req %d: F = %x, want %x", i, r.F, want)
		}
	}
	st := c.Status()
	if st.CompletedTasks != 40 {
		t.Errorf("CompletedTasks = %d, want 40", st.CompletedTasks)
	}
	if st.QueuedTasks != 0 || st.OutstandingTasks != 0 {
		t.Errorf("leftover tasks: %+v", st)
	}
	if len(st.Workers) != 2 || st.Capacity != 4 {
		t.Errorf("fleet status: %+v", st)
	}
}

// TestFleetPriorityOrder checks dispatch follows (priority, submission)
// order on a capacity-1 fleet, the same rule sched.Batch applies in-process.
func TestFleetPriorityOrder(t *testing.T) {
	c := newTestCoordinator(t, Config{})
	var mu sync.Mutex
	var order []float64
	objectives := map[string]func([]float64) float64{
		"record": func(x []float64) float64 {
			mu.Lock()
			order = append(order, x[0])
			mu.Unlock()
			return x[0]
		},
	}
	startWorker(t, c, WorkerConfig{Name: "solo", Capacity: 1, Objectives: objectives})

	reqs := make([]sim.FleetRequest, 6)
	for i := range reqs {
		reqs[i] = sim.FleetRequest{
			Objective: "record",
			X:         []float64{float64(i)},
			Seed:      int64(i),
			Dt:        0.1,
			Priority:  5 - i, // reverse: the last submission must run first
		}
	}
	if _, err := c.SampleFleet(context.Background(), reqs); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []float64{5, 4, 3, 2, 1, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
}

// TestFleetRedispatchOnWorkerDeath kills an agent while it holds dispatched
// tasks (its objective blocks) and checks the survivors complete the batch
// with the exact same values — the deterministic re-dispatch contract.
func TestFleetRedispatchOnWorkerDeath(t *testing.T) {
	c := newTestCoordinator(t, Config{})

	entered := make(chan struct{}, 64)
	release := make(chan struct{})
	blocking := map[string]func([]float64) float64{
		"sphere": func(x []float64) float64 {
			entered <- struct{}{}
			<-release
			return testfunc.Sphere(x)
		},
	}
	defer close(release)
	stopA := startWorker(t, c, WorkerConfig{Name: "doomed", Capacity: 4, Objectives: blocking})
	startWorker(t, c, WorkerConfig{Name: "survivor", Capacity: 1})

	reqs := make([]sim.FleetRequest, 10)
	for i := range reqs {
		reqs[i] = sim.FleetRequest{
			Objective: "sphere",
			X:         []float64{float64(i), 1},
			Seed:      int64(100 + i),
			Skip:      i % 3,
			Dt:        0.5,
		}
	}
	type answer struct {
		res []sim.FleetResult
		err error
	}
	got := make(chan answer, 1)
	go func() {
		res, err := c.SampleFleet(context.Background(), reqs)
		got <- answer{res, err}
	}()

	// Wait until the doomed worker is actually executing (it blocks), then
	// kill it; its outstanding tasks must be re-dispatched to the survivor.
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("doomed worker never started a task")
	}
	stopA()

	select {
	case a := <-got:
		if a.err != nil {
			t.Fatal(a.err)
		}
		for i, r := range a.res {
			if want := expectedDraw(reqs[i].Seed, reqs[i].Skip); r.Z != want {
				t.Errorf("req %d: Z = %x, want %x", i, r.Z, want)
			}
			if want := testfunc.Sphere(reqs[i].X); r.F != want {
				t.Errorf("req %d: F = %x, want %x", i, r.F, want)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("batch did not complete after worker death")
	}
	st := c.Status()
	if st.DeadWorkers != 1 {
		t.Errorf("DeadWorkers = %d, want 1", st.DeadWorkers)
	}
	if st.RequeuedTasks == 0 {
		t.Error("no tasks were requeued although the dead worker held dispatched tasks")
	}
}

// TestFleetHeartbeatTimeout registers a silent agent (hello, then nothing):
// the janitor must declare it dead and hand its tasks to a live worker.
func TestFleetHeartbeatTimeout(t *testing.T) {
	c := newTestCoordinator(t, Config{Heartbeat: 25 * time.Millisecond, Timeout: 100 * time.Millisecond})

	// A hand-rolled mute worker: registers big capacity so it wins the
	// initial dispatch, then never heartbeats and never answers.
	conn, err := net.Dial("tcp", c.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, &Message{Type: TypeHello, Hello: &Hello{Name: "mute", Capacity: 64}}); err != nil {
		t.Fatal(err)
	}
	var welcome Message
	if err := ReadFrame(conn, &welcome); err != nil || welcome.Type != TypeWelcome {
		t.Fatalf("welcome: %v %+v", err, welcome)
	}
	waitCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.WaitWorkers(waitCtx, 1); err != nil {
		t.Fatal(err)
	}

	reqs := []sim.FleetRequest{
		{Objective: "sphere", X: []float64{1, 2}, Seed: 11, Dt: 0.1},
		{Objective: "sphere", X: []float64{3, 4}, Seed: 12, Skip: 2, Dt: 0.1},
	}
	got := make(chan error, 1)
	var res []sim.FleetResult
	go func() {
		var err error
		res, err = c.SampleFleet(context.Background(), reqs)
		got <- err
	}()

	// Give the dispatcher time to hand the tasks to the mute worker, then
	// bring up a live one; only the heartbeat timeout can free the tasks.
	time.Sleep(30 * time.Millisecond)
	startWorker(t, c, WorkerConfig{Name: "live", Capacity: 1})

	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("batch never completed; heartbeat timeout did not fire")
	}
	for i, r := range res {
		if want := expectedDraw(reqs[i].Seed, reqs[i].Skip); r.Z != want {
			t.Errorf("req %d: Z = %x, want %x", i, r.Z, want)
		}
	}
	if st := c.Status(); st.DeadWorkers != 1 {
		t.Errorf("DeadWorkers = %d, want 1 (the mute worker)", st.DeadWorkers)
	}
}

// TestFleetUnknownObjectiveFailsBatch checks a worker that cannot resolve
// the objective fails the batch with a descriptive error instead of wedging
// it.
func TestFleetUnknownObjectiveFailsBatch(t *testing.T) {
	c := newTestCoordinator(t, Config{})
	startWorker(t, c, WorkerConfig{Name: "a", Capacity: 2})
	_, err := c.SampleFleet(context.Background(), []sim.FleetRequest{
		{Objective: "no-such-objective", X: []float64{1}, Seed: 1, Dt: 0.1},
	})
	if err == nil || !strings.Contains(err.Error(), "unknown objective") {
		t.Fatalf("err = %v, want unknown objective", err)
	}
	if st := c.Status(); st.QueuedTasks != 0 || st.OutstandingTasks != 0 {
		t.Errorf("failed batch left tasks behind: %+v", st)
	}
}

// TestFleetSampleContextCancel checks an empty fleet queues tasks until the
// caller gives up, and that the abandoned tasks are withdrawn.
func TestFleetSampleContextCancel(t *testing.T) {
	c := newTestCoordinator(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := c.SampleFleet(ctx, []sim.FleetRequest{
		{Objective: "sphere", X: []float64{1, 1}, Seed: 1, Dt: 0.1},
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if st := c.Status(); st.QueuedTasks != 0 {
		t.Errorf("abandoned batch left %d queued tasks", st.QueuedTasks)
	}
	// Regression: the heap itself must shrink, not just the live count — an
	// agent-less coordinator accumulating abandoned-task corpses is a leak.
	c.mu.Lock()
	heapLen := len(c.queue)
	c.mu.Unlock()
	if heapLen != 0 {
		t.Errorf("abandoned batch left %d entries in the queue heap", heapLen)
	}
}

// TestFleetRejectsNonFiniteValues pins the JSON-boundary guards: non-finite
// request payloads are rejected before dispatch, and a worker whose
// objective diverges to a non-finite value fails the batch with a
// descriptive error instead of an unencodable result frame wedging the run.
func TestFleetRejectsNonFiniteValues(t *testing.T) {
	c := newTestCoordinator(t, Config{})
	startWorker(t, c, WorkerConfig{Name: "a", Capacity: 1, Objectives: map[string]func([]float64) float64{
		"diverge": func([]float64) float64 { return math.Inf(1) },
	}})

	if _, err := c.SampleFleet(context.Background(), []sim.FleetRequest{
		{Objective: "diverge", X: []float64{math.NaN()}, Seed: 1, Dt: 0.1},
	}); err == nil || !strings.Contains(err.Error(), "non-finite coordinate") {
		t.Errorf("NaN coordinate: err = %v, want non-finite rejection", err)
	}
	if _, err := c.SampleFleet(context.Background(), []sim.FleetRequest{
		{Objective: "diverge", X: []float64{1}, Seed: 1, Dt: math.Inf(1)},
	}); err == nil || !strings.Contains(err.Error(), "non-finite dt") {
		t.Errorf("Inf dt: err = %v, want non-finite rejection", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.SampleFleet(ctx, []sim.FleetRequest{
		{Objective: "diverge", X: []float64{1}, Seed: 1, Dt: 0.1},
	}); err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Errorf("divergent objective: err = %v, want non-finite task error", err)
	}
}

// TestFleetCloseFailsPending checks Close unblocks waiting batches with
// ErrClosed and further SampleFleet calls refuse immediately.
func TestFleetCloseFailsPending(t *testing.T) {
	c := NewCoordinator(Config{})
	if err := c.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		_, err := c.SampleFleet(context.Background(), []sim.FleetRequest{
			{Objective: "sphere", X: []float64{1, 1}, Seed: 1, Dt: 0.1},
		})
		got <- err
	}()
	// Let the batch enqueue before closing.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := c.Status(); st.QueuedTasks == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batch never enqueued")
		}
		time.Sleep(time.Millisecond)
	}
	c.Close()
	select {
	case err := <-got:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("pending batch err = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock the pending batch")
	}
	if _, err := c.SampleFleet(context.Background(), []sim.FleetRequest{{Objective: "sphere", Seed: 1, Dt: 0.1}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close err = %v, want ErrClosed", err)
	}
	c.Close() // idempotent
}

// TestFleetWorkerReconnect checks RunLoop agents survive a coordinator-side
// connection drop: the agent re-registers and keeps serving.
func TestFleetWorkerReconnect(t *testing.T) {
	c := newTestCoordinator(t, Config{Heartbeat: 20 * time.Millisecond, Timeout: 80 * time.Millisecond})
	w := NewWorker(WorkerConfig{Addr: c.Addr().String(), Name: "phoenix", Capacity: 1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.RunLoop(ctx)
	}()
	defer func() { cancel(); <-done }()

	waitCtx, waitCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer waitCancel()
	if err := c.WaitWorkers(waitCtx, 1); err != nil {
		t.Fatal(err)
	}

	// Sever the registered connection from the coordinator side.
	c.mu.Lock()
	for _, rw := range c.workers {
		rw.conn.Close()
	}
	c.mu.Unlock()

	// The agent must come back on its own and execute a batch.
	reqs := []sim.FleetRequest{{Objective: "sphere", X: []float64{2, 2}, Seed: 21, Dt: 0.1}}
	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	res, err := c.SampleFleet(sctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if want := expectedDraw(21, 0); res[0].Z != want {
		t.Errorf("Z = %x, want %x", res[0].Z, want)
	}
}

// TestFleetWorkerMultiAddressFailover checks an agent configured with a
// coordinator failover list re-homes: when its current coordinator dies,
// the reconnect loop rotates to the next address and registers there.
func TestFleetWorkerMultiAddressFailover(t *testing.T) {
	c1 := NewCoordinator(Config{})
	if err := c1.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c2 := newTestCoordinator(t, Config{})
	w := NewWorker(WorkerConfig{
		Addrs:    []string{c1.Addr().String(), c2.Addr().String()},
		Name:     "nomad",
		Capacity: 1,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.RunLoop(ctx)
	}()
	defer func() { cancel(); <-done }()

	waitCtx, waitCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer waitCancel()
	if err := c1.WaitWorkers(waitCtx, 1); err != nil {
		t.Fatal(err)
	}

	// First coordinator dies for good; the agent must surface on the
	// second and serve a batch there.
	c1.Close()
	waitCtx2, waitCancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer waitCancel2()
	if err := c2.WaitWorkers(waitCtx2, 1); err != nil {
		t.Fatal(err)
	}
	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	res, err := c2.SampleFleet(sctx, []sim.FleetRequest{{Objective: "sphere", X: []float64{2, 2}, Seed: 33, Dt: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if want := expectedDraw(33, 0); res[0].Z != want {
		t.Errorf("Z = %x, want %x", res[0].Z, want)
	}
}

// TestFleetConcurrentBatches checks many simultaneous SampleFleet callers
// (the jobs manager's shape: one batch per running job) all complete
// correctly over one small fleet.
func TestFleetConcurrentBatches(t *testing.T) {
	c := newTestCoordinator(t, Config{})
	startWorker(t, c, WorkerConfig{Name: "a", Capacity: 3})
	startWorker(t, c, WorkerConfig{Name: "b", Capacity: 2})

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for round := 0; round < 5; round++ {
				reqs := make([]sim.FleetRequest, 8)
				for i := range reqs {
					reqs[i] = sim.FleetRequest{
						Objective: "sphere",
						X:         []float64{rng.Float64(), rng.Float64()},
						Seed:      rng.Int63(),
						Skip:      rng.Intn(4),
						Dt:        0.1,
						Priority:  rng.Intn(2),
					}
				}
				res, err := c.SampleFleet(context.Background(), reqs)
				if err != nil {
					errs <- err
					return
				}
				for i, r := range res {
					if want := expectedDraw(reqs[i].Seed, reqs[i].Skip); r.Z != want {
						errs <- fmt.Errorf("goroutine %d round %d req %d: Z = %x, want %x", g, round, i, r.Z, want)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
