package dist

import "repro/internal/obs"

// Fleet metrics (obs registry). The frame and byte counters are indexed
// by Proto so the per-frame cost on the codec hot path is two atomic
// adds with no label formatting; both sides of the wire update the same
// series names, so a coordinator process reports its traffic and a
// worker process (via -debug-addr) reports its own.
var (
	mFramesTx = [2]*obs.Counter{
		ProtoJSON: obs.Default().Counter(`dist_frames_total{codec="json",dir="tx"}`,
			"wire frames per codec per direction (tx = written, rx = read)"),
		ProtoBinary: obs.Default().Counter(`dist_frames_total{codec="binary",dir="tx"}`),
	}
	mFramesRx = [2]*obs.Counter{
		ProtoJSON:   obs.Default().Counter(`dist_frames_total{codec="json",dir="rx"}`),
		ProtoBinary: obs.Default().Counter(`dist_frames_total{codec="binary",dir="rx"}`),
	}
	mBytesTx = [2]*obs.Counter{
		ProtoJSON: obs.Default().Counter(`dist_bytes_total{codec="json",dir="tx"}`,
			"wire bytes (length prefix included) per codec per direction"),
		ProtoBinary: obs.Default().Counter(`dist_bytes_total{codec="binary",dir="tx"}`),
	}
	mBytesRx = [2]*obs.Counter{
		ProtoJSON:   obs.Default().Counter(`dist_bytes_total{codec="json",dir="rx"}`),
		ProtoBinary: obs.Default().Counter(`dist_bytes_total{codec="binary",dir="rx"}`),
	}

	// Coordinator-side fleet health.
	mRTT = obs.Default().Histogram("dist_dispatch_rtt_seconds", nil,
		"dispatch-to-result round trip per task, including worker queue and execution time")
	mHeartbeatGap = obs.Default().Histogram("dist_heartbeat_gap_seconds", nil,
		"silence between consecutive frames from a worker (heartbeat cadence)")
	mTasksCompleted = obs.Default().Counter("dist_tasks_completed_total",
		"fleet tasks completed with a result applied")
	mRedispatch = obs.Default().Counter("dist_redispatch_total",
		"outstanding tasks re-dispatched after a worker death")
	mWorkerDeaths = obs.Default().Counter("dist_worker_deaths_total",
		"workers declared dead (disconnect, heartbeat timeout, send failure)")
	mWorkersGauge = obs.Default().Gauge("dist_workers",
		"workers currently registered")
	mQueueDepth = obs.Default().Gauge("dist_queue_depth",
		"tasks waiting for fleet capacity (including not-yet-compacted abandoned entries)")

	// Worker-agent side.
	mWorkerSessions = obs.Default().Counter("dist_worker_sessions_total",
		"coordinator sessions a worker agent completed the handshake for")
	mWorkerTasks = obs.Default().Counter("dist_worker_tasks_total",
		"tasks executed by this worker agent")
)

// countFrameTx records one written frame of total bytes n (prefix
// included) under codec p.
func countFrameTx(p Proto, n int) {
	if p.valid() {
		mFramesTx[p].Inc()
		mBytesTx[p].Add(int64(n))
	}
}

// countFrameRx records one read frame of total bytes n (prefix included)
// under codec p.
func countFrameRx(p Proto, n int) {
	if p.valid() {
		mFramesRx[p].Inc()
		mBytesRx[p].Add(int64(n))
	}
}
