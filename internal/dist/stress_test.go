package dist

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestFleetStressChaos is the fleet's survival property under -race: many
// concurrent batch submitters over a small fleet whose agents are being
// killed and replaced the whole time. Every single result must still equal
// the local replay — worker churn may delay a draw, never change it — and
// the coordinator's books must balance at the end.
func TestFleetStressChaos(t *testing.T) {
	c := newTestCoordinator(t, Config{Heartbeat: 20 * time.Millisecond, Timeout: 100 * time.Millisecond})

	// The starting fleet: three agents with mixed capacity.
	startWorker(t, c, WorkerConfig{Name: "w0", Capacity: 2})
	startWorker(t, c, WorkerConfig{Name: "w1", Capacity: 1})
	startWorker(t, c, WorkerConfig{Name: "w2", Capacity: 3})

	var stop atomic.Bool
	var chaos sync.WaitGroup
	chaos.Add(1)
	go func() {
		// The chaos monkey: every ~25ms kill a random agent and bring up a
		// replacement, so batches keep landing on a churning fleet. Replacement
		// agents use RunLoop (auto-reconnect), doubling as reconnect coverage.
		defer chaos.Done()
		rng := rand.New(rand.NewSource(1))
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var agents []func()
		defer func() {
			for _, kill := range agents {
				kill()
			}
		}()
		for n := 0; !stop.Load(); n++ {
			time.Sleep(25 * time.Millisecond)
			// Kill one registered connection straight at the socket — the
			// bluntest death the coordinator can observe.
			c.mu.Lock()
			victims := make([]*remoteWorker, 0, len(c.workers))
			for _, w := range c.workers {
				victims = append(victims, w)
			}
			c.mu.Unlock()
			if len(victims) > 1 { // keep at least one agent alive
				victims[rng.Intn(len(victims))].conn.Close()
			}
			w := NewWorker(WorkerConfig{Addr: c.Addr().String(), Name: fmt.Sprintf("r%d", n), Capacity: 1 + rng.Intn(3)})
			wctx, wcancel := context.WithCancel(ctx)
			done := make(chan struct{})
			go func() {
				defer close(done)
				w.RunLoop(wctx)
			}()
			agents = append(agents, func() { wcancel(); <-done })
		}
	}()

	var submitters sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		submitters.Add(1)
		go func() {
			defer submitters.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for round := 0; round < 6; round++ {
				reqs := make([]sim.FleetRequest, 12)
				for i := range reqs {
					reqs[i] = sim.FleetRequest{
						Objective: "rosenbrock",
						X:         []float64{rng.Float64(), rng.Float64(), rng.Float64()},
						Seed:      rng.Int63(),
						Skip:      rng.Intn(5),
						Dt:        0.1,
						Priority:  rng.Intn(3),
					}
				}
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				res, err := c.SampleFleet(ctx, reqs)
				cancel()
				if err != nil {
					errs <- fmt.Errorf("goroutine %d round %d: %v", g, round, err)
					return
				}
				for i, r := range res {
					if want := expectedDraw(reqs[i].Seed, reqs[i].Skip); r.Z != want {
						errs <- fmt.Errorf("goroutine %d round %d req %d: Z = %x, want %x (worker churn changed a value)", g, round, i, r.Z, want)
						return
					}
				}
			}
		}()
	}
	submitters.Wait()
	stop.Store(true)
	chaos.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := c.Status()
	if want := uint64(8 * 6 * 12); st.CompletedTasks != want {
		t.Errorf("CompletedTasks = %d, want %d", st.CompletedTasks, want)
	}
	if st.QueuedTasks != 0 || st.OutstandingTasks != 0 {
		t.Errorf("books do not balance after the storm: %+v", st)
	}
}
