package dist

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// fuzzSeedMessages is the set of valid messages seeding both frame fuzzers
// (and, via gencorpus, the committed corpus files): one of each type plus the
// boundary shapes that exercise every branch of the codecs.
func fuzzSeedMessages() []*Message {
	return []*Message{
		{Type: TypeHello, Hello: &Hello{Name: "w", Capacity: 4, Protos: []string{"binary"}}},
		{Type: TypeHello, Hello: &Hello{Name: "", Capacity: 0}},
		{Type: TypeWelcome, Welcome: &Welcome{Worker: "w#1", HeartbeatMillis: 1000, Proto: "binary"}},
		{Type: TypeHeartbeat},
		{Type: TypeDispatch, Dispatch: &Dispatch{}},
		{Type: TypeDispatch, Dispatch: &Dispatch{Tasks: []Task{
			{ID: 1, Objective: "rosenbrock", X: []float64{0.5, -1.25, math.Copysign(0, -1)}, Seed: -7, Skip: 3, Dt: 0.1},
			{ID: 2, Objective: "sphere", Seed: 1 << 40, Dt: 5e-324},
		}}},
		{Type: TypeResults, Results: &Results{Results: []TaskResult{
			{ID: 1, Z: 0.5, F: 0.25},
			{ID: 2, Err: `unknown objective "x"`},
		}}},
	}
}

// fuzzFrame checks the fuzz contract for one codec: arbitrary input must
// either error or decode to a message that re-encodes and re-decodes to
// itself. Panics and non-finite leaks fail the run; the count-vs-remaining
// guards are what keep hostile lengths from over-allocating.
func fuzzFrame(t *testing.T, proto Proto, data []byte) {
	fr := NewFrameReader(bytes.NewReader(data), proto)
	var m Message
	if err := fr.Read(&m); err != nil {
		return // rejected input is the expected outcome for garbage
	}
	checkFiniteMessage(t, &m)
	var buf bytes.Buffer
	if err := NewFrameWriter(&buf, proto).Write(&m); err != nil {
		t.Fatalf("decoded message does not re-encode: %v (%+v)", err, m)
	}
	var m2 Message
	if err := NewFrameReader(&buf, proto).Read(&m2); err != nil {
		t.Fatalf("re-encoded message does not decode: %v (%+v)", err, m)
	}
	if !reflect.DeepEqual(canonical(&m), canonical(&m2)) {
		t.Fatalf("re-encode round trip diverged:\n first:  %+v\n second: %+v", m, m2)
	}
}

// checkFiniteMessage asserts no non-finite float crossed the decoder.
func checkFiniteMessage(t *testing.T, m *Message) {
	bad := func(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }
	if m.Dispatch != nil {
		for _, task := range m.Dispatch.Tasks {
			if bad(task.Dt) {
				t.Fatalf("non-finite dt decoded: %v", task.Dt)
			}
			for _, v := range task.X {
				if bad(v) {
					t.Fatalf("non-finite coordinate decoded: %v", v)
				}
			}
		}
	}
	if m.Results != nil {
		for _, r := range m.Results.Results {
			if bad(r.Z) || bad(r.F) {
				t.Fatalf("non-finite result decoded: %+v", r)
			}
		}
	}
}

// FuzzBinaryFrame fuzzes the binary frame decoder: truncated, oversize,
// garbage and bit-flipped inputs must error cleanly — never panic, never
// over-allocate, never yield a message that fails to round-trip.
func FuzzBinaryFrame(f *testing.F) {
	for _, m := range fuzzSeedMessages() {
		frame, err := appendBinaryFrame(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		clone := func(b []byte) []byte { return append([]byte(nil), b...) }
		f.Add(clone(frame))
		f.Add(clone(frame[:len(frame)-1])) // truncated body
		f.Add(clone(frame[:2]))            // truncated prefix
		f.Add(append(clone(frame), 0xFF))  // trailing garbage
	}
	var hostile [4]byte
	binary.BigEndian.PutUint32(hostile[:], MaxFrame+1)
	f.Add(hostile[:])
	f.Add([]byte{0, 0, 0, 1, 99}) // unknown type
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzFrame(t, ProtoBinary, data)
	})
}

// TestWriteFuzzCorpus regenerates the committed seed corpus under
// testdata/fuzz/ from fuzzSeedMessages. It is a no-op unless
// DIST_WRITE_FUZZ_CORPUS=1, so the corpus only changes deliberately:
//
//	DIST_WRITE_FUZZ_CORPUS=1 go test ./internal/dist -run TestWriteFuzzCorpus
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("DIST_WRITE_FUZZ_CORPUS") != "1" {
		t.Skip("set DIST_WRITE_FUZZ_CORPUS=1 to rewrite testdata/fuzz")
	}
	write := func(target string, frames [][]byte) {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, frame := range frames {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", frame)
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	var bin, jsn [][]byte
	for _, m := range fuzzSeedMessages() {
		frame, err := appendBinaryFrame(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		bin = append(bin, frame, frame[:len(frame)-1])
		var buf bytes.Buffer
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
		jf := append([]byte(nil), buf.Bytes()...)
		jsn = append(jsn, jf, jf[:len(jf)-1])
	}
	var hostile [4]byte
	binary.BigEndian.PutUint32(hostile[:], MaxFrame+1)
	bin = append(bin, hostile[:], []byte{0, 0, 0, 1, 99})
	jsn = append(jsn, []byte{0, 0, 0, 2, '{', '!'})
	write("FuzzBinaryFrame", bin)
	write("FuzzJSONFrame", jsn)
}

// FuzzJSONFrame is the same contract over the JSON fallback codec.
func FuzzJSONFrame(f *testing.F) {
	for _, m := range fuzzSeedMessages() {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, m); err != nil {
			f.Fatal(err)
		}
		frame := buf.Bytes()
		f.Add(append([]byte(nil), frame...))
		f.Add(append([]byte(nil), frame[:len(frame)-1]...))
	}
	f.Add([]byte{0, 0, 0, 2, '{', '!'})
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzFrame(t, ProtoJSON, data)
	})
}
