package dist_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro"
	"repro/internal/dist"
	"repro/internal/testfunc"
)

// This file is the fleet's conformance layer: full optimizations executed
// over real TCP worker agents must be bitwise identical to the in-process
// runs of the same seed — at any fleet size, in every driver mode, and with
// an agent killed mid-run. It is the distributed extension of the
// internal/conformance golden-trace contract.

// fingerprint renders the parts of a result that must be bitwise identical.
func fingerprint(res *repro.Result) string {
	return fmt.Sprintf("term=%s iters=%d evals=%d walltime=%x bestG=%x bestX=%x moves=%+v waste=%d adaptive=%d",
		res.Termination, res.Iterations, res.Evaluations, res.Walltime, res.BestG, res.BestX,
		res.Moves, res.SpeculativeWaste, res.AdaptiveRounds)
}

// runInProcess is the reference execution: plain LocalSpace, shared pool.
func runInProcess(t *testing.T, opts ...repro.RunOption) *repro.Result {
	t.Helper()
	space := repro.NewLocalSpace(repro.LocalConfig{
		Dim:      3,
		F:        testfunc.Rosenbrock,
		Sigma0:   repro.ConstSigma(25),
		Seed:     11,
		Parallel: true,
	})
	res, err := repro.Run(context.Background(), space, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// runOverFleet executes the same run with sampling farmed to remote agents.
func runOverFleet(t *testing.T, c *dist.Coordinator, opts ...repro.RunOption) *repro.Result {
	t.Helper()
	space := repro.NewLocalSpace(repro.LocalConfig{
		Dim:      3,
		F:        testfunc.Rosenbrock,
		Sigma0:   repro.ConstSigma(25),
		Seed:     11,
		Parallel: true,
	})
	res, err := repro.Run(context.Background(), space,
		append(opts, repro.WithFleet(c, "rosenbrock"))...)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// startAgent runs one agent against the coordinator, returning an
// idempotent kill.
func startAgent(t *testing.T, c *dist.Coordinator, name string, capacity int) (kill func()) {
	t.Helper()
	before := c.Workers()
	w := dist.NewWorker(dist.WorkerConfig{Addr: c.Addr().String(), Name: name, Capacity: capacity})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	wctx, wcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer wcancel()
	if err := c.WaitWorkers(wctx, before+1); err != nil {
		t.Fatal(err)
	}
	killed := false
	kill = func() {
		if !killed {
			killed = true
			cancel()
			<-done
		}
	}
	t.Cleanup(kill)
	return kill
}

func newFleet(t *testing.T) *dist.Coordinator {
	t.Helper()
	c := dist.NewCoordinator(dist.Config{})
	if err := c.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestFleetRunBitwiseIdentical runs every driver mode in-process and over
// fleets of one, two and four agents: all four fingerprints must agree bit
// for bit.
func TestFleetRunBitwiseIdentical(t *testing.T) {
	modes := []struct {
		name string
		opts []repro.RunOption
	}{
		{"pc", []repro.RunOption{
			repro.WithStrategy("pc"), repro.WithUniformSimplex(11, -4, 4),
			repro.WithMaxIterations(25), repro.WithTolerance(0), repro.WithBudget(0)}},
		{"pc-speculative", []repro.RunOption{
			repro.WithStrategy("pc"), repro.WithUniformSimplex(11, -4, 4),
			repro.WithMaxIterations(25), repro.WithTolerance(0), repro.WithBudget(0),
			repro.WithSpeculation()}},
		{"det-adaptive", []repro.RunOption{
			repro.WithStrategy("det"), repro.WithUniformSimplex(11, -4, 4),
			repro.WithMaxIterations(25), repro.WithTolerance(0), repro.WithBudget(0),
			repro.WithAdaptiveSamples(40)}},
		{"pso", []repro.RunOption{
			repro.WithStrategy("pso"), repro.WithUniformSimplex(11, -4, 4),
			repro.WithSwarm(10, 8)}},
	}
	for _, mode := range modes {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			want := fingerprint(runInProcess(t, mode.opts...))
			for _, agents := range []int{1, 2, 4} {
				c := newFleet(t)
				for i := 0; i < agents; i++ {
					startAgent(t, c, fmt.Sprintf("a%d", i), 2)
				}
				got := fingerprint(runOverFleet(t, c, mode.opts...))
				if got != want {
					t.Errorf("%d agents: fleet run diverged\n got %s\nwant %s", agents, got, want)
				}
				c.Close()
			}
		})
	}
}

// TestFleetRunSurvivesWorkerDeathBitwise is the acceptance property: a run
// over two agents during which one is killed mid-run completes and stays
// bitwise identical to the in-process run. The victim's outstanding tasks
// are re-executed by the survivor with the same draws, so the kill can delay
// the run but cannot steer it.
func TestFleetRunSurvivesWorkerDeathBitwise(t *testing.T) {
	opts := []repro.RunOption{
		repro.WithStrategy("pc"), repro.WithUniformSimplex(11, -4, 4),
		repro.WithMaxIterations(40), repro.WithTolerance(0), repro.WithBudget(0),
	}
	want := fingerprint(runInProcess(t, opts...))

	c := newFleet(t)
	kill := startAgent(t, c, "victim", 2)
	startAgent(t, c, "survivor", 2)

	killed := make(chan struct{})
	trace := repro.WithTrace(func(ev repro.TraceEvent) {
		if ev.Iter == 8 {
			kill()
			close(killed)
		}
	})
	got := fingerprint(runOverFleet(t, c, append(opts, trace)...))
	select {
	case <-killed:
	default:
		t.Fatal("the victim agent was never killed; the scenario did not run")
	}
	if got != want {
		t.Errorf("fleet run with mid-run worker death diverged\n got %s\nwant %s", got, want)
	}
	if st := c.Status(); st.DeadWorkers != 1 {
		t.Errorf("DeadWorkers = %d, want 1", st.DeadWorkers)
	}
}

// TestFleetObjectiveMismatchFailsLoudly checks the determinism guard: an
// agent whose named objective computes something else must fail the run
// with a descriptive error, not corrupt it.
func TestFleetObjectiveMismatchFailsLoudly(t *testing.T) {
	c := newFleet(t)
	w := dist.NewWorker(dist.WorkerConfig{
		Addr: c.Addr().String(), Name: "liar", Capacity: 1,
		Objectives: map[string]func([]float64) float64{
			"rosenbrock": testfunc.Sphere, // wrong function under the right name
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	defer func() { cancel(); <-done }()
	wctx, wcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer wcancel()
	if err := c.WaitWorkers(wctx, 1); err != nil {
		t.Fatal(err)
	}

	space := repro.NewLocalSpace(repro.LocalConfig{
		Dim: 3, F: testfunc.Rosenbrock, Sigma0: repro.ConstSigma(25), Seed: 11, Parallel: true,
	})
	_, err := repro.Run(context.Background(), space,
		repro.WithStrategy("pc"), repro.WithUniformSimplex(11, -4, 4),
		repro.WithMaxIterations(10), repro.WithFleet(c, "rosenbrock"))
	if err == nil {
		t.Fatal("divergent worker objective was not detected")
	}
}

// TestWithFleetValidation checks the facade-level option errors.
func TestWithFleetValidation(t *testing.T) {
	if _, err := repro.NewRunner(repro.WithFleet(nil, "rosenbrock")); err == nil {
		t.Error("nil fleet accepted")
	}
	c := newFleet(t)
	if _, err := repro.NewRunner(repro.WithFleet(c, "")); err == nil {
		t.Error("empty objective accepted")
	}
	// A non-LocalSpace cannot reroute its sampling.
	space := repro.NewLocalSpace(repro.LocalConfig{
		Dim: 3, F: testfunc.Rosenbrock, Seed: 1,
	})
	if err := space.UseFleet(nil, "x"); err == nil {
		t.Error("LocalSpace.UseFleet accepted a nil fleet")
	}
	space.NewPoint([]float64{0, 0, 0})
	if err := space.UseFleet(c, "rosenbrock"); err == nil {
		t.Error("UseFleet accepted a space that already created points")
	}
}
