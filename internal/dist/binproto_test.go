package dist

import (
	"bytes"
	"context"
	"encoding/binary"
	"io"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// encodeBinary is the test-side shorthand for one binary frame.
func encodeBinary(t *testing.T, m *Message) []byte {
	t.Helper()
	buf, err := appendBinaryFrame(nil, m)
	if err != nil {
		t.Fatalf("appendBinaryFrame: %v", err)
	}
	return buf
}

// decodeBinary reads one binary frame through the incremental reader path.
func decodeBinary(frame []byte, m *Message) error {
	return NewFrameReader(bytes.NewReader(frame), ProtoBinary).Read(m)
}

// canonical normalizes the encoding-invisible distinctions of a message so
// round-trip comparisons are exact: an empty Welcome.Proto means JSON and is
// decoded as such; empty slices decode as nil.
func canonical(m *Message) *Message {
	out := *m
	if m.Welcome != nil {
		w := *m.Welcome
		if w.Proto == "" {
			w.Proto = ProtoJSON.String()
		}
		out.Welcome = &w
	}
	if m.Hello != nil && len(m.Hello.Protos) == 0 {
		h := *m.Hello
		h.Protos = nil
		out.Hello = &h
	}
	if m.Dispatch != nil {
		d := Dispatch{}
		if len(m.Dispatch.Tasks) > 0 {
			d.Tasks = append([]Task(nil), m.Dispatch.Tasks...)
			for i := range d.Tasks {
				if len(d.Tasks[i].X) == 0 {
					d.Tasks[i].X = nil
				}
			}
		}
		out.Dispatch = &d
	}
	if m.Results != nil && len(m.Results.Results) == 0 {
		out.Results = &Results{}
	}
	return &out
}

// randomCodecMessage builds one random frame with the negotiation fields
// populated, restricted to field values both codecs can carry.
func randomCodecMessage(rng *rand.Rand) *Message {
	m := randomMessage(rng)
	switch m.Type {
	case TypeHello:
		switch rng.Intn(3) {
		case 0:
			m.Hello.Protos = []string{ProtoBinary.String()}
		case 1:
			m.Hello.Protos = []string{ProtoJSON.String(), ProtoBinary.String()}
		}
	case TypeWelcome:
		if rng.Intn(2) == 0 {
			m.Welcome.Proto = Proto(rng.Intn(2)).String()
		}
	case TypeDispatch:
		for i := range m.Dispatch.Tasks {
			if rng.Intn(4) == 0 {
				m.Dispatch.Tasks[i].Seed = -m.Dispatch.Tasks[i].Seed
			}
		}
	case TypeResults:
		for i := range m.Results.Results {
			if rng.Intn(4) == 0 {
				m.Results.Results[i] = TaskResult{ID: m.Results.Results[i].ID, Err: "unknown objective \"x\""}
			}
		}
	}
	return m
}

// TestBinaryFrameRoundTripProperty drives randomly generated messages of
// every type through the binary encoder and the incremental reader, demanding
// exact reconstruction — the binary face of TestFrameRoundTripProperty.
func TestBinaryFrameRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func() bool {
		m := randomCodecMessage(rng)
		frame := encodeBinary(t, m)
		var got Message
		if err := decodeBinary(frame, &got); err != nil {
			t.Fatalf("decode: %v (message %+v)", err, m)
		}
		return reflect.DeepEqual(*canonical(m), got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestCrossCodecFrameEquivalence encodes the same random messages through
// both codecs and demands both decode to the same message — the two wire
// formats carry identical semantics, which is what lets a session negotiate
// either without affecting results.
func TestCrossCodecFrameEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 300; i++ {
		m := randomCodecMessage(rng)
		var jbuf bytes.Buffer
		if err := WriteFrame(&jbuf, m); err != nil {
			t.Fatalf("json encode: %v", err)
		}
		var viaJSON, viaBinary Message
		if err := ReadFrame(&jbuf, &viaJSON); err != nil {
			t.Fatalf("json decode: %v", err)
		}
		if err := decodeBinary(encodeBinary(t, m), &viaBinary); err != nil {
			t.Fatalf("binary decode: %v", err)
		}
		if !reflect.DeepEqual(canonical(&viaJSON), &viaBinary) {
			t.Fatalf("codec disagreement on %+v:\n json:   %+v\n binary: %+v", m, viaJSON, viaBinary)
		}
	}
}

// TestBinaryFrameBoundaryValues pins the encoder's edges: empty batches,
// zero-coordinate tasks, maximum-capacity hellos, u16-limit strings, and the
// adversarial floats (negative zero, denormals, extremes) the determinism
// contract needs bit-exact.
func TestBinaryFrameBoundaryValues(t *testing.T) {
	long := strings.Repeat("x", maxStr16)
	cases := []*Message{
		{Type: TypeHeartbeat},
		{Type: TypeHello, Hello: &Hello{Name: "", Capacity: 0}},
		{Type: TypeHello, Hello: &Hello{Name: long, Capacity: math.MaxInt32, Protos: []string{"json", "binary"}}},
		{Type: TypeWelcome, Welcome: &Welcome{Worker: "w#1", HeartbeatMillis: math.MaxInt32, Proto: "binary"}},
		{Type: TypeDispatch, Dispatch: &Dispatch{}},
		{Type: TypeDispatch, Dispatch: &Dispatch{Tasks: []Task{{ID: math.MaxUint64, Objective: long, X: nil, Seed: math.MinInt64, Skip: math.MaxInt32, Dt: 5e-324}}}},
		{Type: TypeDispatch, Dispatch: &Dispatch{Tasks: []Task{{ID: 0, Objective: "f", X: []float64{math.Copysign(0, -1), 1.797e308, -5e-324}, Seed: 0, Skip: 0, Dt: 1}}}},
		{Type: TypeResults, Results: &Results{}},
		{Type: TypeResults, Results: &Results{Results: []TaskResult{{ID: 1, Z: math.Copysign(0, -1), F: 1.797e308}}}},
		{Type: TypeResults, Results: &Results{Results: []TaskResult{{ID: 2, Err: long}}}},
	}
	for i, m := range cases {
		var got Message
		if err := decodeBinary(encodeBinary(t, m), &got); err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(canonical(m), &got) {
			t.Errorf("case %d: round trip mismatch:\n in:  %+v\n out: %+v", i, m, got)
		}
	}

	// Past the u16 string limit the encoder must refuse (objectives, names)…
	tooLong := long + "x"
	if _, err := appendBinaryFrame(nil, &Message{Type: TypeHello, Hello: &Hello{Name: tooLong}}); err == nil {
		t.Error("oversize hello name encoded")
	}
	// …except error text, which is truncated rather than stranding the result.
	frame := encodeBinary(t, &Message{Type: TypeResults, Results: &Results{Results: []TaskResult{{ID: 3, Err: tooLong}}}})
	var got Message
	if err := decodeBinary(frame, &got); err != nil {
		t.Fatalf("truncated-error frame: %v", err)
	}
	if gotErr := got.Results.Results[0].Err; gotErr != long {
		t.Errorf("oversize error text: got %d bytes, want truncation to %d", len(gotErr), maxStr16)
	}
}

// TestBinaryFrameRejectsNonFinite checks both directions of the non-finite
// guarantee: NaN and ±Inf cannot be encoded, and a hand-patched frame
// carrying them cannot be decoded — exactly the JSON boundary's semantics.
func TestBinaryFrameRejectsNonFinite(t *testing.T) {
	bad := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	for _, v := range bad {
		msgs := []*Message{
			{Type: TypeDispatch, Dispatch: &Dispatch{Tasks: []Task{{ID: 1, Objective: "f", X: []float64{v}, Dt: 1}}}},
			{Type: TypeDispatch, Dispatch: &Dispatch{Tasks: []Task{{ID: 1, Objective: "f", Dt: v}}}},
			{Type: TypeResults, Results: &Results{Results: []TaskResult{{ID: 1, Z: v, F: 0}}}},
			{Type: TypeResults, Results: &Results{Results: []TaskResult{{ID: 1, Z: 0, F: v}}}},
		}
		for i, m := range msgs {
			if _, err := appendBinaryFrame(nil, m); err == nil {
				t.Errorf("%v in message %d encoded", v, i)
			}
		}
	}

	// Patch a valid results frame's Z bits to NaN: decode must reject it.
	frame := encodeBinary(t, &Message{Type: TypeResults, Results: &Results{Results: []TaskResult{{ID: 1, Z: 0.5, F: 0.25}}}})
	patched := append([]byte(nil), frame...)
	// Layout: prefix(4) type(1) count(4) id(8) kind(1) z(8) f(8).
	binary.BigEndian.PutUint64(patched[4+1+4+8+1:], math.Float64bits(math.NaN()))
	var m Message
	if err := decodeBinary(patched, &m); err == nil {
		t.Error("NaN-patched frame decoded")
	}
}

// TestBinaryFrameTruncation feeds every proper prefix of valid frames to the
// reader: each must error (io.EOF only at a clean frame boundary), never
// panic, never yield a message.
func TestBinaryFrameTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 50; i++ {
		frame := encodeBinary(t, randomCodecMessage(rng))
		for cut := 0; cut < len(frame); cut++ {
			var m Message
			err := decodeBinary(frame[:cut], &m)
			if err == nil {
				t.Fatalf("prefix of %d/%d bytes decoded", cut, len(frame))
			}
			if cut == 0 && err != io.EOF {
				t.Fatalf("empty stream: err = %v, want io.EOF", err)
			}
		}
	}
}

// TestBinaryFrameRejectsHostileCounts checks that corrupt counts and length
// prefixes are rejected by arithmetic, before any allocation is sized from
// them.
func TestBinaryFrameRejectsHostileCounts(t *testing.T) {
	// Oversize length prefix.
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], MaxFrame+1)
	var m Message
	if err := decodeBinary(prefix[:], &m); err == nil {
		t.Error("oversize length prefix accepted")
	}
	// Zero-length frame (no type byte).
	if err := decodeBinary([]byte{0, 0, 0, 0}, &m); err == nil {
		t.Error("empty frame accepted")
	}
	// A dispatch claiming 2^31 tasks in a 12-byte body.
	body := []byte{binDispatch, 0x80, 0, 0, 0, 1, 2, 3}
	frame := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(frame, uint32(len(body)))
	copy(frame[4:], body)
	if err := decodeBinary(frame, &m); err == nil {
		t.Error("hostile task count accepted")
	}
	// A task claiming 65535 coordinates in a near-empty frame.
	task := encodeBinary(t, &Message{Type: TypeDispatch, Dispatch: &Dispatch{Tasks: []Task{{ID: 1, Objective: "f", Dt: 1}}}})
	patched := append([]byte(nil), task...)
	// Layout: prefix(4) type(1) count(4) id(8) objlen(2)+"f"(1) nx(2)…
	binary.BigEndian.PutUint16(patched[4+1+4+8+2+1:], math.MaxUint16)
	if err := decodeBinary(patched, &m); err == nil {
		t.Error("hostile coordinate count accepted")
	}
	// Unknown frame type and trailing garbage.
	if err := decodeBinary([]byte{0, 0, 0, 1, 99}, &m); err == nil {
		t.Error("unknown frame type accepted")
	}
	hb := encodeBinary(t, &Message{Type: TypeHeartbeat})
	hb = append(hb, 0xFF)
	binary.BigEndian.PutUint32(hb, 2)
	if err := decodeBinary(hb, &m); err == nil {
		t.Error("trailing garbage accepted")
	}
}

// TestBinaryFrameSmallerThanJSON pins the point of the codec: a
// representative dispatch/results exchange must be substantially smaller on
// the wire than its JSON encoding.
func TestBinaryFrameSmallerThanJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	tasks := make([]Task, 16)
	for i := range tasks {
		tasks[i] = Task{ID: uint64(i + 1), Objective: "rosenbrock", X: []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}, Seed: rng.Int63(), Skip: i, Dt: 0.1}
	}
	m := &Message{Type: TypeDispatch, Dispatch: &Dispatch{Tasks: tasks}}
	var jbuf bytes.Buffer
	if err := WriteFrame(&jbuf, m); err != nil {
		t.Fatal(err)
	}
	bin := encodeBinary(t, m)
	if len(bin) >= jbuf.Len() {
		t.Errorf("binary dispatch frame is %d bytes, JSON %d — binary should be smaller", len(bin), jbuf.Len())
	}
	t.Logf("dispatch(16 tasks, dim 3): binary %d bytes, JSON %d bytes", len(bin), jbuf.Len())
}

// TestNegotiateProto pins the negotiation rule matrix.
func TestNegotiateProto(t *testing.T) {
	cases := []struct {
		offered []string
		ceiling Proto
		want    Proto
	}{
		{nil, ProtoBinary, ProtoJSON},                            // pre-negotiation worker
		{[]string{"binary"}, ProtoBinary, ProtoBinary},           // both sides current
		{[]string{"binary"}, ProtoJSON, ProtoJSON},               // coordinator capped to JSON
		{[]string{"json"}, ProtoBinary, ProtoJSON},               // worker capped to JSON
		{[]string{"exotic", "binary"}, ProtoBinary, ProtoBinary}, // unknown offers skipped
		{[]string{"exotic"}, ProtoBinary, ProtoJSON},
	}
	for _, c := range cases {
		if got := negotiateProto(c.offered, c.ceiling); got != c.want {
			t.Errorf("negotiateProto(%v, %v) = %v, want %v", c.offered, c.ceiling, got, c.want)
		}
	}
}

// TestWorkerProtocolNegotiationE2E runs real sessions through each protocol
// configuration pair and checks what the coordinator reports — including the
// failure mode of -proto binary against a JSON-only coordinator.
func TestWorkerProtocolNegotiationE2E(t *testing.T) {
	cases := []struct {
		coordinator string
		worker      string
		want        string
	}{
		{"binary", "auto", "binary"},
		{"binary", "json", "json"},
		{"json", "auto", "json"},
		{"binary", "binary", "binary"},
	}
	for _, tc := range cases {
		c := newTestCoordinator(t, Config{Protocol: tc.coordinator})
		stop := startWorker(t, c, WorkerConfig{Name: "n", Capacity: 1, Protocol: tc.worker})
		st := c.Status()
		if len(st.Workers) != 1 || st.Workers[0].Protocol != tc.want {
			t.Errorf("coordinator=%s worker=%s: negotiated %+v, want %s", tc.coordinator, tc.worker, st.Workers, tc.want)
		}
		if st.Protocol != tc.coordinator {
			t.Errorf("status protocol = %q, want %q", st.Protocol, tc.coordinator)
		}
		stop()
		c.Close()
	}

	// A worker that requires binary must fail its session against a
	// JSON-capped coordinator instead of silently running degraded.
	c := newTestCoordinator(t, Config{Protocol: "json"})
	w := NewWorker(WorkerConfig{Addr: c.Addr().String(), Name: "strict", Capacity: 1, Protocol: "binary"})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := w.Run(ctx)
	if err == nil || !strings.Contains(err.Error(), "binary") {
		t.Errorf("strict binary worker against JSON coordinator: err = %v, want protocol failure", err)
	}
}
