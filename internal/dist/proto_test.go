package dist

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// TestFrameRoundTripProperty drives randomly generated messages through
// WriteFrame/ReadFrame and demands exact reconstruction — float64 payloads
// included, which is what the fleet's bitwise-determinism contract rides on.
func TestFrameRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		m := randomMessage(rng)
		var buf bytes.Buffer
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
		var got Message
		if err := ReadFrame(&buf, &got); err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		return reflect.DeepEqual(*m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// randomMessage builds one random frame of a random type, with adversarial
// float values (denormals, extremes, negative zero) in the numeric fields.
func randomMessage(rng *rand.Rand) *Message {
	f64 := func() float64 {
		switch rng.Intn(5) {
		case 0:
			return 0
		case 1:
			return math.Copysign(0, -1) // negative zero must round-trip
		case 2:
			return 5e-324 // smallest denormal
		case 3:
			return 1.797e308
		default:
			return rng.NormFloat64() * 1e6
		}
	}
	xs := func() []float64 {
		out := make([]float64, rng.Intn(5))
		for i := range out {
			out[i] = f64()
		}
		return out
	}
	switch rng.Intn(5) {
	case 0:
		return &Message{Type: TypeHello, Hello: &Hello{Name: "w", Capacity: rng.Intn(100)}}
	case 1:
		return &Message{Type: TypeWelcome, Welcome: &Welcome{Worker: "w#1", HeartbeatMillis: rng.Intn(5000)}}
	case 2:
		return &Message{Type: TypeHeartbeat}
	case 3:
		n := rng.Intn(4)
		tasks := make([]Task, n)
		for i := range tasks {
			tasks[i] = Task{
				ID:        rng.Uint64(),
				Objective: "rosenbrock",
				X:         xs(),
				Seed:      rng.Int63(),
				Skip:      rng.Intn(1000),
				Dt:        f64(),
			}
		}
		return &Message{Type: TypeDispatch, Dispatch: &Dispatch{Tasks: tasks}}
	default:
		n := rng.Intn(4)
		rs := make([]TaskResult, n)
		for i := range rs {
			rs[i] = TaskResult{ID: rng.Uint64(), Z: f64(), F: f64()}
		}
		return &Message{Type: TypeResults, Results: &Results{Results: rs}}
	}
}

// TestReadFrameTruncated checks the three truncation shapes: clean EOF
// before a frame, a cut prefix, and a cut body.
func TestReadFrameTruncated(t *testing.T) {
	var m Message
	if err := ReadFrame(bytes.NewReader(nil), &m); err != io.EOF {
		t.Errorf("empty stream: err = %v, want io.EOF", err)
	}
	if err := ReadFrame(bytes.NewReader([]byte{0, 0}), &m); err != io.ErrUnexpectedEOF {
		t.Errorf("cut prefix: err = %v, want io.ErrUnexpectedEOF", err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Message{Type: TypeHeartbeat}); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-2]
	if err := ReadFrame(bytes.NewReader(cut), &m); err != io.ErrUnexpectedEOF {
		t.Errorf("cut body: err = %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestReadFrameRejectsOversizeLength checks a corrupt (or hostile) length
// prefix is rejected before any allocation.
func TestReadFrameRejectsOversizeLength(t *testing.T) {
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], MaxFrame+1)
	var m Message
	if err := ReadFrame(bytes.NewReader(prefix[:]), &m); err == nil {
		t.Fatal("oversize length accepted")
	}
}

// TestReadFrameRejectsGarbageJSON checks a well-framed but undecodable body
// errors instead of yielding a zero message.
func TestReadFrameRejectsGarbageJSON(t *testing.T) {
	body := []byte("{not json")
	buf := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(buf, uint32(len(body)))
	copy(buf[4:], body)
	var m Message
	if err := ReadFrame(bytes.NewReader(buf), &m); err == nil {
		t.Fatal("garbage JSON accepted")
	}
}

// TestWorkerDrawMatchesStreamReplay pins the worker-side draw to the
// reference construction the sampling layer uses: position skip of
// rand.New(rand.NewSource(seed)).NormFloat64() — including cache hits,
// misses, rewinds and interleaved streams.
func TestWorkerDrawMatchesStreamReplay(t *testing.T) {
	w := NewWorker(WorkerConfig{Addr: "unused"})
	expect := func(seed int64, skip int) float64 {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < skip; i++ {
			rng.NormFloat64()
		}
		return rng.NormFloat64()
	}
	rng := rand.New(rand.NewSource(99))
	seeds := []int64{1, -7, 1 << 40, 42}
	// Random access across streams: every draw must match the replay,
	// whatever the cache did.
	for i := 0; i < 500; i++ {
		seed := seeds[rng.Intn(len(seeds))]
		skip := rng.Intn(20)
		if got, want := w.draw(seed, skip), expect(seed, skip); got != want {
			t.Fatalf("draw(%d, %d) = %x, want %x", seed, skip, got, want)
		}
	}
	// Sequential access (the hot path) must hit the cache and still match.
	for skip := 0; skip < 50; skip++ {
		if got, want := w.draw(1234, skip), expect(1234, skip); got != want {
			t.Fatalf("sequential draw(1234, %d) = %x, want %x", skip, got, want)
		}
	}
}
