// Package dist is the distributed sampling fleet: a coordinator that farms
// batched sampling increments out to remote worker agents over TCP, the
// network realization of the paper's master/worker deployment (and of the
// evaluator fleets behind parallel SPSA and parallel Bayesian optimization
// services). cmd/optworker runs the agent; the coordinator plugs in under
// sim.LocalSpace as a sim.FleetSampler, so every optimizer, the jobs manager
// and the optd server gain remote execution without code changes.
//
// Determinism is the package's load-bearing property: a task is a pure
// function — "the (skip+1)-th standard-normal draw of the stream seeded s,
// plus the objective value at x" — so any worker, at any time, after any
// number of re-dispatches, produces the same bytes. The coordinator therefore
// re-dispatches the outstanding tasks of a dead worker (disconnect or
// heartbeat timeout) to the survivors, in task order, and the run's results
// remain bitwise identical to a single-process run.
//
// Frame protocol: every message is a 4-byte big-endian length prefix followed
// by a JSON-encoded Message. The worker opens the connection and sends hello;
// the coordinator answers welcome (assigning the worker id and the heartbeat
// interval) and then pushes dispatch frames; the worker answers with result
// frames and periodic heartbeats. Either side closing the connection ends the
// session; the coordinator requeues whatever the worker still owed.
package dist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// MaxFrame bounds one frame's JSON payload. Batches are a few hundred tasks
// of a few coordinates each; 16 MiB is far above any legitimate frame and
// keeps a corrupt length prefix from allocating gigabytes.
const MaxFrame = 16 << 20

// Message types.
const (
	// TypeHello is the worker's opening frame.
	TypeHello = "hello"
	// TypeWelcome is the coordinator's answer to hello.
	TypeWelcome = "welcome"
	// TypeHeartbeat is the worker's liveness beacon (no body).
	TypeHeartbeat = "heartbeat"
	// TypeDispatch carries tasks from coordinator to worker.
	TypeDispatch = "dispatch"
	// TypeResults carries task results from worker to coordinator.
	TypeResults = "results"
)

// Message is the frame envelope: Type selects which (single) body field is
// set. Heartbeats have no body.
type Message struct {
	Type     string    `json:"type"`
	Hello    *Hello    `json:"hello,omitempty"`
	Welcome  *Welcome  `json:"welcome,omitempty"`
	Dispatch *Dispatch `json:"dispatch,omitempty"`
	Results  *Results  `json:"results,omitempty"`
}

// Hello announces a worker: its human label and how many tasks it executes
// concurrently.
type Hello struct {
	Name     string `json:"name"`
	Capacity int    `json:"capacity"`
}

// Welcome acknowledges registration: the coordinator-assigned unique worker
// id and the heartbeat interval the worker must keep.
type Welcome struct {
	Worker          string `json:"worker"`
	HeartbeatMillis int    `json:"heartbeat_ms"`
}

// Task is one sampling increment to execute remotely. Its result is a pure
// function of these fields, which is what makes re-dispatch safe.
type Task struct {
	// ID is coordinator-unique and monotone; requeued tasks keep their ID.
	ID uint64 `json:"id"`
	// Objective names the function to evaluate in the worker's catalog.
	Objective string `json:"objective"`
	// X holds the evaluation coordinates.
	X []float64 `json:"x"`
	// Seed identifies the point's noise stream.
	Seed int64 `json:"seed"`
	// Skip is the number of draws the stream has already consumed.
	Skip int `json:"skip"`
	// Dt is the sampling increment in virtual seconds (the cost model's
	// simulated duration; the draw itself does not depend on it).
	Dt float64 `json:"dt"`
}

// Dispatch carries a slice of tasks to one worker.
type Dispatch struct {
	Tasks []Task `json:"tasks"`
}

// TaskResult is the worker's answer to one Task. Go's JSON encoding of
// float64 is shortest-round-trip, so Z and F cross the wire bit-exactly;
// non-finite values cannot be encoded, which is why the coordinator rejects
// non-finite requests up front and the worker reports a non-finite objective
// value as Err instead of as F.
type TaskResult struct {
	ID uint64 `json:"id"`
	// Z is the standard-normal draw at position Skip of stream Seed.
	Z float64 `json:"z"`
	// F is the objective value at X.
	F float64 `json:"f"`
	// Err reports a task the worker could not execute (unknown objective);
	// the coordinator fails the owning batch with it.
	Err string `json:"err,omitempty"`
}

// Results carries completed task results back to the coordinator.
type Results struct {
	Results []TaskResult `json:"results"`
}

// WriteFrame encodes m as one length-prefixed JSON frame. The prefix and
// body are written in a single Write call, so a mutex around WriteFrame is
// all a concurrent sender needs.
func WriteFrame(w io.Writer, m *Message) error {
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("dist: encode frame: %w", err)
	}
	if len(body) > MaxFrame {
		return fmt.Errorf("dist: frame of %d bytes exceeds the %d-byte limit", len(body), MaxFrame)
	}
	buf := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(buf, uint32(len(body)))
	copy(buf[4:], body)
	_, err = w.Write(buf)
	return err
}

// ReadFrame decodes the next frame into m. It returns io.EOF on a clean
// close before the prefix and io.ErrUnexpectedEOF on a truncated frame.
func ReadFrame(r io.Reader, m *Message) error {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(prefix[:])
	if n > MaxFrame {
		return fmt.Errorf("dist: frame length %d exceeds the %d-byte limit", n, MaxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	*m = Message{}
	if err := json.Unmarshal(body, m); err != nil {
		return fmt.Errorf("dist: decode frame: %w", err)
	}
	return nil
}
