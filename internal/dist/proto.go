// Package dist is the distributed sampling fleet: a coordinator that farms
// batched sampling increments out to remote worker agents over TCP, the
// network realization of the paper's master/worker deployment (and of the
// evaluator fleets behind parallel SPSA and parallel Bayesian optimization
// services). cmd/optworker runs the agent; the coordinator plugs in under
// sim.LocalSpace as a sim.FleetSampler, so every optimizer, the jobs manager
// and the optd server gain remote execution without code changes.
//
// Determinism is the package's load-bearing property: a task is a pure
// function — "the (skip+1)-th standard-normal draw of the stream seeded s,
// plus the objective value at x" — so any worker, at any time, after any
// number of re-dispatches, produces the same bytes. The coordinator therefore
// re-dispatches the outstanding tasks of a dead worker (disconnect or
// heartbeat timeout) to the survivors, in task order, and the run's results
// remain bitwise identical to a single-process run.
//
// Frame protocol: every message is a 4-byte big-endian length prefix followed
// by a message body in one of two codecs. The handshake is always JSON — the
// worker opens the connection and sends hello (offering the codecs it speaks),
// the coordinator answers welcome (assigning the worker id, the heartbeat
// interval, and the codec the session will use) — and every frame after the
// welcome uses the negotiated codec: the compact binary format of binproto.go
// when both sides speak it, the JSON envelope otherwise. A pre-negotiation
// worker offers nothing and a pre-negotiation coordinator grants nothing, so
// old and new binaries interoperate over JSON automatically. After the
// handshake the coordinator pushes dispatch frames; the worker answers with
// result frames and periodic heartbeats. Either side closing the connection
// ends the session; the coordinator requeues whatever the worker still owed.
package dist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// MaxFrame bounds one frame's JSON payload. Batches are a few hundred tasks
// of a few coordinates each; 16 MiB is far above any legitimate frame and
// keeps a corrupt length prefix from allocating gigabytes.
const MaxFrame = 16 << 20

// Message types.
const (
	// TypeHello is the worker's opening frame.
	TypeHello = "hello"
	// TypeWelcome is the coordinator's answer to hello.
	TypeWelcome = "welcome"
	// TypeHeartbeat is the worker's liveness beacon (no body).
	TypeHeartbeat = "heartbeat"
	// TypeDispatch carries tasks from coordinator to worker.
	TypeDispatch = "dispatch"
	// TypeResults carries task results from worker to coordinator.
	TypeResults = "results"
)

// Message is the frame envelope: Type selects which (single) body field is
// set. Heartbeats have no body.
type Message struct {
	Type     string    `json:"type"`
	Hello    *Hello    `json:"hello,omitempty"`
	Welcome  *Welcome  `json:"welcome,omitempty"`
	Dispatch *Dispatch `json:"dispatch,omitempty"`
	Results  *Results  `json:"results,omitempty"`
}

// Proto identifies a frame codec. The zero value is the JSON envelope every
// version speaks; ProtoBinary is the compact codec of binproto.go.
type Proto uint8

// The frame codecs, in preference order.
const (
	ProtoJSON   Proto = 0
	ProtoBinary Proto = 1
)

// String returns the codec's wire name ("json", "binary").
func (p Proto) String() string {
	switch p {
	case ProtoJSON:
		return "json"
	case ProtoBinary:
		return "binary"
	}
	return fmt.Sprintf("proto(%d)", uint8(p))
}

func (p Proto) valid() bool { return p == ProtoJSON || p == ProtoBinary }

// ParseProto parses a codec's wire name.
func ParseProto(s string) (Proto, error) {
	switch s {
	case "json":
		return ProtoJSON, nil
	case "binary":
		return ProtoBinary, nil
	}
	return ProtoJSON, fmt.Errorf("dist: unknown protocol %q (want \"binary\" or \"json\")", s)
}

// negotiateProto picks the session codec: the best codec the worker offered
// that the coordinator's ceiling allows. An empty offer — every
// pre-negotiation worker — selects JSON.
func negotiateProto(offered []string, ceiling Proto) Proto {
	if ceiling >= ProtoBinary {
		for _, name := range offered {
			if name == ProtoBinary.String() {
				return ProtoBinary
			}
		}
	}
	return ProtoJSON
}

// Hello announces a worker: its human label, how many tasks it executes
// concurrently, and which frame codecs it speaks beyond JSON.
type Hello struct {
	Name     string `json:"name"`
	Capacity int    `json:"capacity"`
	// Protos lists the codecs the worker offers, by wire name. JSON is always
	// implied; pre-negotiation workers omit the field entirely.
	Protos []string `json:"protos,omitempty"`
}

// Welcome acknowledges registration: the coordinator-assigned unique worker
// id, the heartbeat interval the worker must keep, and the frame codec the
// session uses from the next frame on.
type Welcome struct {
	Worker          string `json:"worker"`
	HeartbeatMillis int    `json:"heartbeat_ms"`
	// Proto is the negotiated codec's wire name. Empty — every
	// pre-negotiation coordinator — means JSON.
	Proto string `json:"proto,omitempty"`
}

// Task is one sampling increment to execute remotely. Its result is a pure
// function of these fields, which is what makes re-dispatch safe.
type Task struct {
	// ID is coordinator-unique and monotone; requeued tasks keep their ID.
	ID uint64 `json:"id"`
	// Objective names the function to evaluate in the worker's catalog.
	Objective string `json:"objective"`
	// X holds the evaluation coordinates.
	X []float64 `json:"x"`
	// Seed identifies the point's noise stream.
	Seed int64 `json:"seed"`
	// Skip is the number of draws the stream has already consumed.
	Skip int `json:"skip"`
	// Dt is the sampling increment in virtual seconds (the cost model's
	// simulated duration; the draw itself does not depend on it).
	Dt float64 `json:"dt"`
}

// Dispatch carries a slice of tasks to one worker.
type Dispatch struct {
	Tasks []Task `json:"tasks"`
}

// TaskResult is the worker's answer to one Task. Go's JSON encoding of
// float64 is shortest-round-trip, so Z and F cross the wire bit-exactly;
// non-finite values cannot be encoded, which is why the coordinator rejects
// non-finite requests up front and the worker reports a non-finite objective
// value as Err instead of as F.
type TaskResult struct {
	ID uint64 `json:"id"`
	// Z is the standard-normal draw at position Skip of stream Seed.
	Z float64 `json:"z"`
	// F is the objective value at X.
	F float64 `json:"f"`
	// Err reports a task the worker could not execute (unknown objective);
	// the coordinator fails the owning batch with it.
	Err string `json:"err,omitempty"`
}

// Results carries completed task results back to the coordinator.
type Results struct {
	Results []TaskResult `json:"results"`
}

// WriteFrame encodes m as one length-prefixed JSON frame. The prefix and
// body are written in a single Write call, so a mutex around WriteFrame is
// all a concurrent sender needs.
func WriteFrame(w io.Writer, m *Message) error {
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("dist: encode frame: %w", err)
	}
	if len(body) > MaxFrame {
		return fmt.Errorf("dist: frame of %d bytes exceeds the %d-byte limit", len(body), MaxFrame)
	}
	buf := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(buf, uint32(len(body)))
	copy(buf[4:], body)
	if _, err = w.Write(buf); err != nil {
		return err
	}
	countFrameTx(ProtoJSON, len(buf))
	return nil
}

// ReadFrame decodes the next frame into m. It returns io.EOF on a clean
// close before the prefix and io.ErrUnexpectedEOF on a truncated frame.
func ReadFrame(r io.Reader, m *Message) error {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(prefix[:])
	if n > MaxFrame {
		return fmt.Errorf("dist: frame length %d exceeds the %d-byte limit", n, MaxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	*m = Message{}
	if err := json.Unmarshal(body, m); err != nil {
		return fmt.Errorf("dist: decode frame: %w", err)
	}
	countFrameRx(ProtoJSON, 4+int(n))
	return nil
}
