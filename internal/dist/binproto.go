package dist

// The binary wire codec: the compact frame format negotiated in hello/welcome
// (see proto.go). Both codecs share the outer framing — a 4-byte big-endian
// length prefix bounded by MaxFrame, read incrementally (header first, then
// exactly the announced body) — so a session can switch codec after the
// handshake without resynchronizing.
//
// Binary body layout (all integers big-endian):
//
//	body     := type:u8 payload
//	type     : 1 hello, 2 welcome, 3 heartbeat, 4 dispatch, 5 results
//	hello    := name:str16 capacity:u32 nprotos:u8 protos:(nprotos × u8)
//	welcome  := worker:str16 heartbeat_ms:u32 proto:u8
//	heartbeat:= (empty)
//	dispatch := count:u32 tasks:(count × task)
//	task     := id:u64 objective:str16 nx:u16 x:(nx × f64) seed:u64 skip:u32 dt:f64
//	results  := count:u32 results:(count × result)
//	result   := id:u64 kind:u8; kind 0: z:f64 f:f64, kind 1: err:str16
//	str16    := len:u16 bytes (UTF-8)
//	f64      := IEEE-754 bits; non-finite values are rejected on encode AND
//	            decode, preserving the JSON boundary's cannot-carry-non-finite
//	            guarantee wire-format-independently
//
// Decoding never allocates more than the frame can justify: every count is
// validated against the bytes remaining at its minimum element size before a
// slice is sized from it, so a corrupt or hostile frame errors instead of
// allocating gigabytes.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Binary frame type bytes.
const (
	binHello     byte = 1
	binWelcome   byte = 2
	binHeartbeat byte = 3
	binDispatch  byte = 4
	binResults   byte = 5
)

// Minimum encoded sizes, used to bound slice counts against the bytes
// actually present before allocating.
const (
	binTaskMinSize   = 8 + 2 + 2 + 8 + 4 + 8 // id, objective len, nx, seed, skip, dt
	binResultMinSize = 8 + 1 + 2             // id, kind, shortest branch (error len)
	maxStr16         = 1<<16 - 1
)

var errBinNonFinite = errors.New("dist: binary frame carries a non-finite float")

// appendBinaryFrame appends one length-prefixed binary frame encoding m to
// buf and returns the extended slice. Appending into a caller-reused buffer
// is what makes the per-result send path allocation-free in steady state.
func appendBinaryFrame(buf []byte, m *Message) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length prefix backfilled below
	var err error
	switch m.Type {
	case TypeHello:
		if m.Hello == nil {
			return buf[:start], fmt.Errorf("dist: hello frame without body")
		}
		buf = append(buf, binHello)
		if buf, err = appendStr16(buf, m.Hello.Name); err != nil {
			return buf[:start], err
		}
		if m.Hello.Capacity < 0 {
			return buf[:start], fmt.Errorf("dist: negative capacity %d", m.Hello.Capacity)
		}
		buf = binary.BigEndian.AppendUint32(buf, uint32(m.Hello.Capacity))
		if len(m.Hello.Protos) > 255 {
			return buf[:start], fmt.Errorf("dist: %d offered protocols", len(m.Hello.Protos))
		}
		buf = append(buf, byte(len(m.Hello.Protos)))
		for _, name := range m.Hello.Protos {
			p, perr := ParseProto(name)
			if perr != nil {
				return buf[:start], perr
			}
			buf = append(buf, byte(p))
		}
	case TypeWelcome:
		if m.Welcome == nil {
			return buf[:start], fmt.Errorf("dist: welcome frame without body")
		}
		buf = append(buf, binWelcome)
		if buf, err = appendStr16(buf, m.Welcome.Worker); err != nil {
			return buf[:start], err
		}
		if m.Welcome.HeartbeatMillis < 0 {
			return buf[:start], fmt.Errorf("dist: negative heartbeat %d", m.Welcome.HeartbeatMillis)
		}
		buf = binary.BigEndian.AppendUint32(buf, uint32(m.Welcome.HeartbeatMillis))
		p := ProtoJSON
		if m.Welcome.Proto != "" {
			if p, err = ParseProto(m.Welcome.Proto); err != nil {
				return buf[:start], err
			}
		}
		buf = append(buf, byte(p))
	case TypeHeartbeat:
		buf = append(buf, binHeartbeat)
	case TypeDispatch:
		if m.Dispatch == nil {
			return buf[:start], fmt.Errorf("dist: dispatch frame without body")
		}
		buf = append(buf, binDispatch)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Dispatch.Tasks)))
		for i := range m.Dispatch.Tasks {
			t := &m.Dispatch.Tasks[i]
			buf = binary.BigEndian.AppendUint64(buf, t.ID)
			if buf, err = appendStr16(buf, t.Objective); err != nil {
				return buf[:start], err
			}
			if len(t.X) > maxStr16 {
				return buf[:start], fmt.Errorf("dist: task %d has %d coordinates", t.ID, len(t.X))
			}
			buf = binary.BigEndian.AppendUint16(buf, uint16(len(t.X)))
			for _, v := range t.X {
				if buf, err = appendF64(buf, v); err != nil {
					return buf[:start], err
				}
			}
			buf = binary.BigEndian.AppendUint64(buf, uint64(t.Seed))
			if t.Skip < 0 {
				return buf[:start], fmt.Errorf("dist: task %d has negative skip %d", t.ID, t.Skip)
			}
			buf = binary.BigEndian.AppendUint32(buf, uint32(t.Skip))
			if buf, err = appendF64(buf, t.Dt); err != nil {
				return buf[:start], err
			}
		}
	case TypeResults:
		if m.Results == nil {
			return buf[:start], fmt.Errorf("dist: results frame without body")
		}
		buf = append(buf, binResults)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Results.Results)))
		for i := range m.Results.Results {
			r := &m.Results.Results[i]
			buf = binary.BigEndian.AppendUint64(buf, r.ID)
			if r.Err != "" {
				buf = append(buf, 1)
				msg := r.Err
				if len(msg) > maxStr16 {
					msg = msg[:maxStr16] // a truncated error still fails the batch loudly
				}
				if buf, err = appendStr16(buf, msg); err != nil {
					return buf[:start], err
				}
				continue
			}
			buf = append(buf, 0)
			if buf, err = appendF64(buf, r.Z); err != nil {
				return buf[:start], err
			}
			if buf, err = appendF64(buf, r.F); err != nil {
				return buf[:start], err
			}
		}
	default:
		return buf[:start], fmt.Errorf("dist: unknown message type %q", m.Type)
	}
	body := len(buf) - start - 4
	if body > MaxFrame {
		return buf[:start], fmt.Errorf("dist: frame of %d bytes exceeds the %d-byte limit", body, MaxFrame)
	}
	binary.BigEndian.PutUint32(buf[start:], uint32(body))
	return buf, nil
}

// appendStr16 appends a length-prefixed string (u16 length + bytes).
func appendStr16(buf []byte, s string) ([]byte, error) {
	if len(s) > maxStr16 {
		return buf, fmt.Errorf("dist: string of %d bytes exceeds the u16 length prefix", len(s))
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...), nil
}

// appendF64 appends the IEEE-754 bits of a finite float64.
//
//optlint:floatboundary
func appendF64(buf []byte, v float64) ([]byte, error) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return buf, errBinNonFinite
	}
	return binary.BigEndian.AppendUint64(buf, math.Float64bits(v)), nil
}

// binReader is a bounds-checked cursor over one binary frame body.
type binReader struct {
	b   []byte
	off int
}

func (r *binReader) remaining() int { return len(r.b) - r.off }

func (r *binReader) take(n int) ([]byte, error) {
	if r.remaining() < n {
		return nil, io.ErrUnexpectedEOF
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out, nil
}

func (r *binReader) u8() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *binReader) u16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b), nil
}

func (r *binReader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (r *binReader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

// f64 decodes one IEEE-754 value, rejecting non-finite bit patterns.
//
//optlint:floatboundary
func (r *binReader) f64() (float64, error) {
	bits, err := r.u64()
	if err != nil {
		return 0, err
	}
	v := math.Float64frombits(bits)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, errBinNonFinite
	}
	return v, nil
}

// str16 reads a length-prefixed string, copying it out of the (reused) frame
// buffer.
func (r *binReader) str16() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	b, err := r.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// count reads a u32 element count and validates it against the bytes left at
// the element's minimum encoded size, so a corrupt count cannot drive a huge
// allocation.
func (r *binReader) count(minSize int) (int, error) {
	n, err := r.u32()
	if err != nil {
		return 0, err
	}
	if int64(n)*int64(minSize) > int64(r.remaining()) {
		return 0, fmt.Errorf("dist: count %d exceeds the %d bytes remaining in the frame", n, r.remaining())
	}
	return int(n), nil
}

// decodeBinaryFrame decodes one binary frame body (the bytes after the length
// prefix) into m. Strings and slices are copied out, so the caller may reuse
// body.
func decodeBinaryFrame(body []byte, m *Message) error {
	*m = Message{}
	r := &binReader{b: body}
	typ, err := r.u8()
	if err != nil {
		return fmt.Errorf("dist: empty binary frame")
	}
	switch typ {
	case binHello:
		h := &Hello{}
		if h.Name, err = r.str16(); err != nil {
			return decodeErr(err)
		}
		var capacity uint32
		if capacity, err = r.u32(); err != nil {
			return decodeErr(err)
		}
		if capacity > math.MaxInt32 {
			return fmt.Errorf("dist: capacity %d overflows", capacity)
		}
		h.Capacity = int(capacity)
		var nprotos uint8
		if nprotos, err = r.u8(); err != nil {
			return decodeErr(err)
		}
		if int(nprotos) > r.remaining() {
			return fmt.Errorf("dist: %d offered protocols exceed the frame", nprotos)
		}
		if nprotos > 0 {
			h.Protos = make([]string, 0, nprotos)
			for i := 0; i < int(nprotos); i++ {
				var id uint8
				if id, err = r.u8(); err != nil {
					return decodeErr(err)
				}
				p := Proto(id)
				if !p.valid() {
					return fmt.Errorf("dist: unknown protocol id %d", id)
				}
				h.Protos = append(h.Protos, p.String())
			}
		}
		m.Type, m.Hello = TypeHello, h
	case binWelcome:
		w := &Welcome{}
		if w.Worker, err = r.str16(); err != nil {
			return decodeErr(err)
		}
		hb, err := r.u32()
		if err != nil {
			return decodeErr(err)
		}
		if hb > math.MaxInt32 {
			return fmt.Errorf("dist: heartbeat %d overflows", hb)
		}
		w.HeartbeatMillis = int(hb)
		id, err := r.u8()
		if err != nil {
			return decodeErr(err)
		}
		p := Proto(id)
		if !p.valid() {
			return fmt.Errorf("dist: unknown protocol id %d", id)
		}
		w.Proto = p.String()
		m.Type, m.Welcome = TypeWelcome, w
	case binHeartbeat:
		m.Type = TypeHeartbeat
	case binDispatch:
		n, err := r.count(binTaskMinSize)
		if err != nil {
			return decodeErr(err)
		}
		d := &Dispatch{}
		if n > 0 {
			d.Tasks = make([]Task, n)
		}
		for i := 0; i < n; i++ {
			t := &d.Tasks[i]
			if t.ID, err = r.u64(); err != nil {
				return decodeErr(err)
			}
			if t.Objective, err = r.str16(); err != nil {
				return decodeErr(err)
			}
			nx, err := r.u16()
			if err != nil {
				return decodeErr(err)
			}
			if int(nx)*8 > r.remaining() {
				return fmt.Errorf("dist: %d coordinates exceed the frame", nx)
			}
			if nx > 0 {
				t.X = make([]float64, nx)
				for j := range t.X {
					if t.X[j], err = r.f64(); err != nil {
						return decodeErr(err)
					}
				}
			}
			seed, err := r.u64()
			if err != nil {
				return decodeErr(err)
			}
			t.Seed = int64(seed)
			skip, err := r.u32()
			if err != nil {
				return decodeErr(err)
			}
			if skip > math.MaxInt32 {
				return fmt.Errorf("dist: skip %d overflows", skip)
			}
			t.Skip = int(skip)
			if t.Dt, err = r.f64(); err != nil {
				return decodeErr(err)
			}
		}
		m.Type, m.Dispatch = TypeDispatch, d
	case binResults:
		n, err := r.count(binResultMinSize)
		if err != nil {
			return decodeErr(err)
		}
		rs := &Results{}
		if n > 0 {
			rs.Results = make([]TaskResult, n)
		}
		for i := 0; i < n; i++ {
			tr := &rs.Results[i]
			if tr.ID, err = r.u64(); err != nil {
				return decodeErr(err)
			}
			kind, err := r.u8()
			if err != nil {
				return decodeErr(err)
			}
			switch kind {
			case 0:
				if tr.Z, err = r.f64(); err != nil {
					return decodeErr(err)
				}
				if tr.F, err = r.f64(); err != nil {
					return decodeErr(err)
				}
			case 1:
				if tr.Err, err = r.str16(); err != nil {
					return decodeErr(err)
				}
				if tr.Err == "" {
					return fmt.Errorf("dist: error result %d with empty message", tr.ID)
				}
			default:
				return fmt.Errorf("dist: unknown result kind %d", kind)
			}
		}
		m.Type, m.Results = TypeResults, rs
	default:
		return fmt.Errorf("dist: unknown binary frame type %d", typ)
	}
	if r.remaining() != 0 {
		*m = Message{}
		return fmt.Errorf("dist: %d trailing bytes after the frame body", r.remaining())
	}
	return nil
}

// decodeErr normalizes binReader underflows into frame-decode errors.
func decodeErr(err error) error {
	if err == io.ErrUnexpectedEOF {
		return fmt.Errorf("dist: truncated binary frame body")
	}
	return err
}

// FrameWriter writes frames in one negotiated codec, reusing a single encode
// buffer across frames — the per-result send path of a binary session
// allocates nothing in steady state. Callers serialize writes (the
// coordinator's per-worker sender goroutine, the worker's send mutex).
type FrameWriter struct {
	w     io.Writer
	proto Proto
	buf   []byte
}

// NewFrameWriter builds a writer for the given codec.
func NewFrameWriter(w io.Writer, p Proto) *FrameWriter {
	return &FrameWriter{w: w, proto: p}
}

// Write encodes and writes one frame (prefix and body in a single Write
// call, like WriteFrame).
func (fw *FrameWriter) Write(m *Message) error {
	if fw.proto != ProtoBinary {
		return WriteFrame(fw.w, m)
	}
	buf, err := appendBinaryFrame(fw.buf[:0], m)
	if err != nil {
		return err
	}
	fw.buf = buf
	if _, err = fw.w.Write(buf); err != nil {
		return err
	}
	countFrameTx(ProtoBinary, len(buf))
	return nil
}

// FrameReader reads frames in one negotiated codec, reusing a single body
// buffer across frames (decoded messages copy what they keep).
type FrameReader struct {
	r     io.Reader
	proto Proto
	hdr   [4]byte
	buf   []byte
}

// NewFrameReader builds a reader for the given codec.
func NewFrameReader(r io.Reader, p Proto) *FrameReader {
	return &FrameReader{r: r, proto: p}
}

// Read decodes the next frame into m. Like ReadFrame it returns io.EOF on a
// clean close before the prefix and io.ErrUnexpectedEOF on a truncated frame;
// the length prefix is validated against MaxFrame before the body buffer is
// sized from it.
func (fr *FrameReader) Read(m *Message) error {
	if fr.proto != ProtoBinary {
		return ReadFrame(fr.r, m)
	}
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(fr.hdr[:])
	if n == 0 {
		return fmt.Errorf("dist: empty binary frame")
	}
	if n > MaxFrame {
		return fmt.Errorf("dist: frame length %d exceeds the %d-byte limit", n, MaxFrame)
	}
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n)
	}
	body := fr.buf[:n]
	if _, err := io.ReadFull(fr.r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	if err := decodeBinaryFrame(body, m); err != nil {
		return err
	}
	countFrameRx(ProtoBinary, 4+int(n))
	return nil
}
