package dist

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// ErrClosed is returned by SampleFleet after Close.
var ErrClosed = errors.New("dist: coordinator is closed")

// finite reports whether v can cross a frame (neither codec carries
// non-finite floats).
//
//optlint:floatboundary
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// maxWorkerCapacity clamps a worker's announced concurrency: capacity sizes
// the per-worker send queue, and an absurd hello must not allocate one.
const maxWorkerCapacity = 1024

// pipelineDepth is how many capacities of work a worker may hold: one
// executing, the rest queued on the worker's side of the wire. A worker that
// finishes a task starts the next one it already holds instead of idling for
// a result/dispatch round-trip, so the RTT is paid concurrently with
// execution rather than between tasks. Depth 2 hides one RTT, which is all
// there is to hide; deeper pipelines only inflate re-dispatch bills when a
// worker dies.
const pipelineDepth = 2

// Config configures a Coordinator.
type Config struct {
	// Heartbeat is the liveness interval announced to workers. Zero selects
	// one second.
	Heartbeat time.Duration
	// Timeout is how long a worker may stay silent (no heartbeat, no result)
	// before it is declared dead and its outstanding tasks are re-dispatched.
	// Zero selects 3 * Heartbeat.
	Timeout time.Duration
	// Protocol caps the frame codec the coordinator negotiates per session:
	// "binary" (or empty) grants binary-capable workers the compact codec,
	// "json" forces every session onto the JSON fallback. Codecs never affect
	// results, only bytes and cycles.
	Protocol string
	// Events, when non-nil, receives structured fleet events: worker_join
	// (with the negotiated codec), worker_death and redispatch. A nil
	// logger discards them.
	Events *obs.Logger
}

func (c *Config) normalize() {
	if c.Heartbeat <= 0 {
		c.Heartbeat = time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 3 * c.Heartbeat
	}
	if c.Protocol == "" {
		c.Protocol = ProtoBinary.String()
	}
}

// Coordinator owns the fleet: it accepts worker registrations, dispatches
// prioritized sampling tasks over registered capacity, collects results,
// monitors heartbeats, and deterministically re-dispatches the outstanding
// tasks of dead workers. It implements sim.FleetSampler, so it plugs into
// sim.LocalSpace (LocalConfig.Fleet / UseFleet) underneath every optimizer.
// Create with NewCoordinator, start with Listen, release with Close.
type Coordinator struct {
	cfg     Config
	ceiling Proto // parsed cfg.Protocol

	mu       sync.Mutex
	ln       net.Listener             // guarded by mu
	workers  map[string]*remoteWorker // guarded by mu
	tasks    map[uint64]*task         // guarded by mu: live (queued or outstanding) tasks
	queue    taskQueue                // guarded by mu
	nextTask uint64                   // guarded by mu
	nextID   int                      // guarded by mu
	closed   bool                     // guarded by mu

	// Cumulative counters for Status.
	completed   uint64 // guarded by mu
	requeued    uint64 // guarded by mu
	deadWorkers uint64 // guarded by mu

	quit chan struct{}
	wg   sync.WaitGroup
}

// remoteWorker is the coordinator's record of one connected agent.
type remoteWorker struct {
	id       string
	name     string
	capacity int
	proto    Proto
	conn     net.Conn
	fw       *FrameWriter // owned by the sender goroutine after handshake

	// The coordinator's mu guards the mutable fields below; the fields above
	// are fixed at handshake.
	outstanding map[uint64]*task // guarded by mu
	lastSeen    time.Time        // guarded by mu
	dead        bool             // guarded by mu

	sendq chan Task
	quit  chan struct{}
}

// task is one queued or outstanding sampling increment.
type task struct {
	id   uint64
	prio int
	wire Task
	b    *batch
	idx  int           // result slot in the owning batch
	w    *remoteWorker // nil while queued
	done bool          // completed or abandoned; skip if popped
	sent time.Time     // latest dispatch time, for the RTT histogram; zero if untracked
}

// batch is one SampleFleet call in flight.
type batch struct {
	pending int
	res     []sim.FleetResult
	err     error
	ready   chan struct{}
}

// NewCoordinator builds a coordinator; call Listen to open the registration
// listener.
func NewCoordinator(cfg Config) *Coordinator {
	cfg.normalize()
	ceiling, err := ParseProto(cfg.Protocol)
	if err != nil {
		panic(err)
	}
	c := &Coordinator{
		cfg:     cfg,
		ceiling: ceiling,
		workers: make(map[string]*remoteWorker),
		tasks:   make(map[uint64]*task),
		quit:    make(chan struct{}),
	}
	c.wg.Add(1)
	go c.janitor()
	return c
}

// Listen opens the worker-registration listener on addr (e.g. ":9090", or
// "127.0.0.1:0" in tests) and starts accepting agents.
func (c *Coordinator) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	if c.ln != nil {
		c.mu.Unlock()
		ln.Close()
		return errors.New("dist: coordinator is already listening")
	}
	c.ln = ln
	c.mu.Unlock()
	c.wg.Add(1)
	go c.accept(ln)
	return nil
}

// Addr returns the registration listener's address (nil before Listen).
func (c *Coordinator) Addr() net.Addr {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ln == nil {
		return nil
	}
	return c.ln.Addr()
}

// Close shuts the fleet down: the listener stops, every worker connection is
// closed, and every in-flight SampleFleet fails with ErrClosed. Close is
// idempotent.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.quit)
	if c.ln != nil {
		c.ln.Close()
	}
	workers := make([]*remoteWorker, 0, len(c.workers))
	//optlint:nondeterministic-ok teardown: collection order does not affect results, every worker is closed
	for _, w := range c.workers {
		workers = append(workers, w)
	}
	// Fail every live batch exactly once.
	failed := make(map[*batch]bool)
	//optlint:nondeterministic-ok teardown: each batch fails exactly once regardless of visit order
	for _, t := range c.tasks {
		if !failed[t.b] {
			failed[t.b] = true
			t.b.err = ErrClosed
			close(t.b.ready)
		}
		t.done = true
	}
	c.tasks = make(map[uint64]*task)
	c.queue = nil
	c.mu.Unlock()
	for _, w := range workers {
		c.killWorker(w, "coordinator closed")
	}
	c.wg.Wait()
}

// accept registers agents until the listener closes.
func (c *Coordinator) accept(ln net.Listener) {
	defer c.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.handshake(conn)
		}()
	}
}

// handshake performs the hello/welcome exchange and registers the worker.
func (c *Coordinator) handshake(conn net.Conn) {
	conn.SetDeadline(time.Now().Add(c.cfg.Timeout)) //optlint:nondeterministic-ok I/O deadline, never reaches a sample
	var m Message
	if err := ReadFrame(conn, &m); err != nil || m.Type != TypeHello || m.Hello == nil {
		conn.Close()
		return
	}
	conn.SetDeadline(time.Time{})
	capacity := m.Hello.Capacity
	if capacity < 1 {
		capacity = 1
	}
	if capacity > maxWorkerCapacity {
		capacity = maxWorkerCapacity
	}
	name := m.Hello.Name
	if name == "" {
		name = "worker"
	}
	proto := negotiateProto(m.Hello.Protos, c.ceiling)

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return
	}
	c.nextID++
	w := &remoteWorker{
		id:          fmt.Sprintf("%s#%d", name, c.nextID),
		name:        name,
		capacity:    capacity,
		proto:       proto,
		conn:        conn,
		outstanding: make(map[uint64]*task),
		lastSeen:    time.Now(), //optlint:nondeterministic-ok liveness bookkeeping, never reaches a sample
		// sendq never holds more than the worker's outstanding tasks, which
		// dispatchLocked bounds by pipelineDepth * capacity.
		sendq: make(chan Task, pipelineDepth*capacity),
		quit:  make(chan struct{}),
	}
	c.workers[w.id] = w
	c.mu.Unlock()
	mWorkersGauge.Inc()
	c.cfg.Events.Event("worker_join",
		"worker", w.id, "name", name, "capacity", capacity,
		"proto", proto, "remote", conn.RemoteAddr())

	// The welcome is the last JSON frame of a binary session: it announces the
	// codec every later frame uses.
	if err := WriteFrame(conn, &Message{Type: TypeWelcome, Welcome: &Welcome{
		Worker:          w.id,
		HeartbeatMillis: int(c.cfg.Heartbeat / time.Millisecond),
		Proto:           proto.String(),
	}}); err != nil {
		c.killWorker(w, "welcome failed")
		return
	}
	w.fw = NewFrameWriter(conn, proto)

	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.sender(w)
	}()

	// Hand the freshly registered capacity any queued work, then read until
	// the connection dies.
	c.mu.Lock()
	c.dispatchLocked()
	c.mu.Unlock()
	c.reader(w)
}

// sender drains the worker's send queue into dispatch frames, batching
// whatever is immediately available into one frame.
func (c *Coordinator) sender(w *remoteWorker) {
	for {
		var first Task
		select {
		case first = <-w.sendq:
		case <-w.quit:
			return
		}
		tasks := []Task{first}
	drain:
		for {
			select {
			case t := <-w.sendq:
				tasks = append(tasks, t)
			default:
				break drain
			}
		}
		if err := w.fw.Write(&Message{Type: TypeDispatch, Dispatch: &Dispatch{Tasks: tasks}}); err != nil {
			c.killWorker(w, "send failed")
			return
		}
	}
}

// reader consumes the worker's frames until the connection ends, then
// declares it dead (re-dispatching whatever it still owed).
func (c *Coordinator) reader(w *remoteWorker) {
	fr := NewFrameReader(w.conn, w.proto)
	for {
		var m Message
		if err := fr.Read(&m); err != nil {
			c.killWorker(w, "disconnected")
			return
		}
		c.mu.Lock()
		now := time.Now() //optlint:nondeterministic-ok liveness bookkeeping, never reaches a sample
		mHeartbeatGap.Observe(now.Sub(w.lastSeen).Seconds())
		w.lastSeen = now
		if m.Type == TypeResults && m.Results != nil {
			c.applyResultsLocked(m.Results.Results)
		}
		c.mu.Unlock()
	}
}

// applyResultsLocked folds completed task results into their batches.
// Results for unknown task IDs — duplicates after a re-dispatch race, or
// tasks of an abandoned batch — are dropped: re-dispatched tasks are pure
// functions, so whichever copy landed first carried the same bits.
func (c *Coordinator) applyResultsLocked(results []TaskResult) {
	for _, r := range results {
		t, ok := c.tasks[r.ID]
		if !ok || t.done {
			continue
		}
		if r.Err != "" {
			c.failBatchLocked(t.b, fmt.Errorf("dist: task %d (%s): %s", r.ID, t.wire.Objective, r.Err))
			continue
		}
		t.done = true
		delete(c.tasks, t.id)
		if t.w != nil {
			delete(t.w.outstanding, t.id)
			t.w = nil
		}
		t.b.res[t.idx] = sim.FleetResult{Z: r.Z, F: r.F}
		t.b.pending--
		c.completed++
		mTasksCompleted.Inc()
		if !t.sent.IsZero() {
			mRTT.Observe(time.Since(t.sent).Seconds()) //optlint:nondeterministic-ok RTT metric, never reaches a sample
		}
		if t.b.pending == 0 && t.b.err == nil {
			close(t.b.ready)
		}
	}
	c.dispatchLocked()
}

// failBatchLocked ends a batch with an error and abandons its remaining
// tasks.
func (c *Coordinator) failBatchLocked(b *batch, err error) {
	if b.err != nil {
		return
	}
	b.err = err
	c.abandonBatchLocked(b)
	close(b.ready)
}

// abandonBatchLocked withdraws every live task of a batch: outstanding
// entries are released from their workers (late results for them are
// dropped by ID lookup) and queued entries are compacted out of the heap —
// an agent-less coordinator must not accumulate the corpses of timed-out
// batches until a worker happens to connect.
func (c *Coordinator) abandonBatchLocked(b *batch) {
	//optlint:nondeterministic-ok set removal: withdrawing tasks is order-independent
	for id, t := range c.tasks {
		if t.b != b {
			continue
		}
		t.done = true
		delete(c.tasks, id)
		if t.w != nil {
			delete(t.w.outstanding, id)
			t.w = nil
		}
	}
	n := 0
	for _, t := range c.queue {
		if !t.done {
			c.queue[n] = t
			n++
		}
	}
	for i := n; i < len(c.queue); i++ {
		c.queue[i] = nil
	}
	c.queue = c.queue[:n]
	heap.Init(&c.queue)
}

// dispatchLocked assigns queued tasks to workers with free pipeline slots,
// best task (lowest priority, then oldest) first, to the freest worker. A
// worker's slot budget is pipelineDepth * capacity: capacity tasks executing
// plus a queued reserve that hides the dispatch round-trip. Which worker
// executes a task never affects its value — only when it lands.
func (c *Coordinator) dispatchLocked() {
	defer func() { mQueueDepth.Set(float64(c.queue.Len())) }()
	for c.queue.Len() > 0 {
		var best *remoteWorker
		free := 0
		//optlint:nondeterministic-ok max with a total-order tie-break on worker id, so map order cannot change the pick
		for _, w := range c.workers {
			if w.dead {
				continue
			}
			f := pipelineDepth*w.capacity - len(w.outstanding)
			if f > free || (f == free && f > 0 && w.id < best.id) {
				best, free = w, f
			}
		}
		if best == nil {
			return
		}
		t := heap.Pop(&c.queue).(*task)
		if t.done {
			continue
		}
		t.w = best
		if obs.Enabled() {
			t.sent = time.Now() //optlint:nondeterministic-ok RTT metric timestamp, never reaches a sample
		}
		best.outstanding[t.id] = t
		select {
		case best.sendq <- t.wire:
		default:
			// Cannot happen while outstanding <= pipelineDepth * capacity ==
			// cap(sendq); kept as a non-blocking guard so a bookkeeping bug
			// cannot deadlock the coordinator under its own lock.
			delete(best.outstanding, t.id)
			t.w = nil
			heap.Push(&c.queue, t)
			go c.killWorker(best, "send queue overflow")
			return
		}
	}
}

// killWorker declares a worker dead: its connection closes, its goroutines
// stop, and its outstanding tasks are re-dispatched in ascending task order —
// the deterministic re-dispatch rule. Idempotent.
func (c *Coordinator) killWorker(w *remoteWorker, reason string) {
	c.mu.Lock()
	if w.dead {
		c.mu.Unlock()
		return
	}
	w.dead = true
	close(w.quit)
	w.conn.Close()
	delete(c.workers, w.id)
	c.deadWorkers++
	mWorkerDeaths.Inc()
	mWorkersGauge.Dec()
	orphans := make([]*task, 0, len(w.outstanding))
	//optlint:nondeterministic-ok orphans are sorted by task id below before re-queueing
	for _, t := range w.outstanding {
		orphans = append(orphans, t)
	}
	w.outstanding = nil
	sort.Slice(orphans, func(i, j int) bool { return orphans[i].id < orphans[j].id })
	requeued := 0
	for _, t := range orphans {
		if t.done {
			continue
		}
		t.w = nil
		heap.Push(&c.queue, t)
		c.requeued++
		requeued++
	}
	mRedispatch.Add(int64(requeued))
	c.dispatchLocked()
	c.mu.Unlock()
	c.cfg.Events.Event("worker_death", "worker", w.id, "reason", reason, "requeued", requeued)
	if requeued > 0 {
		c.cfg.Events.Event("redispatch", "worker", w.id, "tasks", requeued)
	}
}

// janitor enforces the heartbeat timeout.
func (c *Coordinator) janitor() {
	defer c.wg.Done()
	interval := c.cfg.Timeout / 2
	if interval <= 0 {
		interval = c.cfg.Heartbeat
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-c.quit:
			return
		case now := <-ticker.C:
			var stale []*remoteWorker
			c.mu.Lock()
			//optlint:nondeterministic-ok re-queued tasks land in the priority heap, whose total order absorbs collection order
			for _, w := range c.workers {
				if now.Sub(w.lastSeen) > c.cfg.Timeout {
					stale = append(stale, w)
				}
			}
			c.mu.Unlock()
			for _, w := range stale {
				c.killWorker(w, "heartbeat timeout")
			}
		}
	}
}

// SampleFleet implements sim.FleetSampler: it enqueues one task per request,
// waits for the fleet to execute them all, and returns the results in
// request order. With no workers connected the tasks wait in the queue (a
// fleet with zero agents is idle, not broken); cancel ctx to give up. On
// cancellation the batch's tasks are withdrawn and late results discarded.
func (c *Coordinator) SampleFleet(ctx context.Context, reqs []sim.FleetRequest) ([]sim.FleetResult, error) {
	if len(reqs) == 0 {
		return nil, ctx.Err()
	}
	// Non-finite coordinates or increments cannot cross either frame codec;
	// reject them here instead of letting an unencodable dispatch frame
	// kill every worker it is offered to.
	for i, r := range reqs {
		if !finite(r.Dt) {
			return nil, fmt.Errorf("dist: request %d has non-finite dt %v", i, r.Dt)
		}
		for _, v := range r.X {
			if !finite(v) {
				return nil, fmt.Errorf("dist: request %d has non-finite coordinate in %v", i, r.X)
			}
		}
	}
	b := &batch{
		pending: len(reqs),
		res:     make([]sim.FleetResult, len(reqs)),
		ready:   make(chan struct{}),
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	for i, r := range reqs {
		c.nextTask++
		t := &task{
			id:   c.nextTask,
			prio: r.Priority,
			b:    b,
			idx:  i,
			wire: Task{
				ID:        c.nextTask,
				Objective: r.Objective,
				X:         r.X,
				Seed:      r.Seed,
				Skip:      r.Skip,
				Dt:        r.Dt,
			},
		}
		c.tasks[t.id] = t
		heap.Push(&c.queue, t)
	}
	c.dispatchLocked()
	c.mu.Unlock()

	select {
	case <-b.ready:
		if b.err != nil {
			return nil, b.err
		}
		return b.res, nil
	case <-ctx.Done():
		c.mu.Lock()
		// The batch may have completed (or failed) between the ctx firing
		// and the lock; honour that outcome, it is already final.
		select {
		case <-b.ready:
			c.mu.Unlock()
			if b.err != nil {
				return nil, b.err
			}
			return b.res, nil
		default:
		}
		c.abandonBatchLocked(b)
		c.dispatchLocked()
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// WorkerStatus describes one registered worker.
type WorkerStatus struct {
	ID          string  `json:"id"`
	Name        string  `json:"name"`
	Capacity    int     `json:"capacity"`
	Outstanding int     `json:"outstanding"`
	IdleSeconds float64 `json:"idle_seconds"`
	// Protocol is the frame codec this session negotiated.
	Protocol string `json:"protocol"`
}

// Status is a point-in-time view of the fleet, served by optd's /healthz.
type Status struct {
	// Protocol is the codec ceiling the coordinator negotiates under
	// (Config.Protocol after defaulting).
	Protocol string `json:"protocol"`
	// Workers lists the registered agents, sorted by id.
	Workers []WorkerStatus `json:"workers"`
	// Capacity is the fleet's total concurrent-task capacity.
	Capacity int `json:"capacity"`
	// QueuedTasks counts tasks waiting for capacity.
	QueuedTasks int `json:"queued_tasks"`
	// OutstandingTasks counts tasks dispatched and not yet completed.
	OutstandingTasks int `json:"outstanding_tasks"`
	// CompletedTasks, RequeuedTasks and DeadWorkers are cumulative.
	CompletedTasks uint64 `json:"completed_tasks"`
	RequeuedTasks  uint64 `json:"requeued_tasks"`
	DeadWorkers    uint64 `json:"dead_workers"`
}

// Status returns the fleet's aggregate state.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		Protocol:       c.ceiling.String(),
		CompletedTasks: c.completed,
		RequeuedTasks:  c.requeued,
		DeadWorkers:    c.deadWorkers,
	}
	now := time.Now() //optlint:nondeterministic-ok Status snapshot for operators; also covers the range below (workers are sorted by id after)
	for _, w := range c.workers {
		st.Workers = append(st.Workers, WorkerStatus{
			ID:          w.id,
			Name:        w.name,
			Capacity:    w.capacity,
			Outstanding: len(w.outstanding),
			IdleSeconds: now.Sub(w.lastSeen).Seconds(),
			Protocol:    w.proto.String(),
		})
		st.Capacity += w.capacity
		st.OutstandingTasks += len(w.outstanding)
	}
	sort.Slice(st.Workers, func(i, j int) bool { return st.Workers[i].ID < st.Workers[j].ID })
	for _, t := range c.queue {
		if !t.done {
			st.QueuedTasks++
		}
	}
	return st
}

// Workers returns the number of registered agents.
func (c *Coordinator) Workers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// WaitWorkers blocks until at least n workers are registered (or ctx ends).
// Deployments use it to hold job submission until the fleet is up.
func (c *Coordinator) WaitWorkers(ctx context.Context, n int) error {
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for {
		if c.Workers() >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-c.quit:
			return ErrClosed
		case <-ticker.C:
		}
	}
}

// taskQueue is a min-heap of queued tasks ordered by (priority, task id):
// caller-ranked dispatch order, submission order within a rank — the same
// rule as sched.Batch, carried over the network.
type taskQueue []*task

func (q taskQueue) Len() int { return len(q) }
func (q taskQueue) Less(i, j int) bool {
	if q[i].prio != q[j].prio {
		return q[i].prio < q[j].prio
	}
	return q[i].id < q[j].id
}
func (q taskQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *taskQueue) Push(x any)   { *q = append(*q, x.(*task)) }
func (q *taskQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return t
}
