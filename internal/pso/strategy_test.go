package pso

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/testfunc"
)

func newStratSpace() *sim.LocalSpace {
	return sim.NewLocalSpace(sim.LocalConfig{
		Dim: 2, F: testfunc.Rastrigin, Sigma0: sim.ConstSigma(2), Seed: 7, Parallel: true,
	})
}

func TestStrategiesRegistered(t *testing.T) {
	for _, name := range []string{"pso", "swarm", "hybrid", "pso+nm"} {
		s, err := core.LookupStrategy(name)
		if err != nil {
			t.Fatalf("LookupStrategy(%q): %v", name, err)
		}
		if s.Resumable() {
			t.Errorf("%q reports Resumable, want false", name)
		}
	}
	if _, err := core.ParseAlgorithm("pso"); err == nil {
		t.Error("ParseAlgorithm(pso) succeeded; pso has no Algorithm value")
	}
}

func TestOptimizeContextCancellation(t *testing.T) {
	space := newStratSpace()
	cfg := DefaultConfig([]float64{-5, -5}, []float64{5, 5})
	cfg.Seed = 7
	cfg.Iterations = 1000
	updates := 0
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg.Trace = func(core.TraceEvent) {
		updates++
		if updates == 3 {
			cancel() // stop the swarm after the third update
		}
	}
	res, err := OptimizeContext(ctx, space, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Termination != "canceled" {
		t.Fatalf("Termination = %q, want canceled", res.Termination)
	}
	if res.Iterations >= 1000 || res.BestX == nil {
		t.Fatalf("canceled run looks wrong: %+v", res)
	}
}

func TestTraceAndTermination(t *testing.T) {
	space := newStratSpace()
	cfg := DefaultConfig([]float64{-5, -5}, []float64{5, 5})
	cfg.Seed = 7
	cfg.Particles = 6
	cfg.Iterations = 9
	var events []core.TraceEvent
	cfg.Trace = func(e core.TraceEvent) { events = append(events, e) }
	res, err := Optimize(space, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Termination != "iterations" {
		t.Fatalf("Termination = %q, want iterations", res.Termination)
	}
	if len(events) != 9 {
		t.Fatalf("got %d trace events, want 9", len(events))
	}
	for i, e := range events {
		if e.Iter != i+1 || len(e.BestX) != 2 {
			t.Fatalf("event %d malformed: %+v", i, e)
		}
	}
}
