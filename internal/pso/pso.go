// Package pso implements the global-optimization extension the paper's
// future-work section proposes (section 5.2): particle swarm optimization
// with the max-noise / point-to-point comparison machinery, and a hybrid
// that uses the stochastic simplex as the local refinement stage ("simplex
// ... used as a local search subroutine within a metaheuristic method",
// section 1.3.5.1).
//
// Every particle evaluation goes through the same sim.Space sampling
// abstraction as the simplex algorithms, so the swarm sees noisy estimates
// whose precision improves with sampling time (eq 1.2). Personal-best and
// global-best updates can be made at a k-sigma confidence separation with
// resampling, the direct transplant of the PC comparison rule.
package pso

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/sim"
)

// Config controls a swarm run.
type Config struct {
	// Particles is the swarm size.
	Particles int
	// Iterations is the number of swarm updates.
	Iterations int
	// Inertia, Cognitive, Social are the standard PSO coefficients
	// (defaults 0.72, 1.49, 1.49 — the constriction values).
	Inertia, Cognitive, Social float64
	// Lo, Hi bound the search box per dimension.
	Lo, Hi []float64
	// SampleDt is the sampling time given to each fresh evaluation.
	SampleDt float64
	// K is the confidence multiplier for noise-aware best-updates: a
	// candidate replaces a best only when candidate + K*sigma < best -
	// K*sigma, resampling both while indeterminate. K = 0 compares plain
	// means (the noise-blind swarm the paper warns about).
	K float64
	// Resample is the sampling increment per indeterminate round.
	Resample float64
	// ResampleGrowth multiplies the increment each round (>= 1).
	ResampleGrowth float64
	// MaxRounds caps resample rounds per comparison.
	MaxRounds int
	// MaxWalltime bounds the virtual clock (0 = unlimited).
	MaxWalltime float64
	// Seed drives the swarm's own randomness.
	Seed int64
	// Trace, if non-nil, receives one event per swarm update (Iter is the
	// update number, Best/BestX the current global best, Move is MoveNone —
	// the swarm makes no simplex transformations).
	Trace func(core.TraceEvent)
}

// DefaultConfig returns standard constriction-coefficient PSO settings with
// noise-aware comparisons at one sigma.
func DefaultConfig(lo, hi []float64) Config {
	return Config{
		Particles:      20,
		Iterations:     60,
		Inertia:        0.72,
		Cognitive:      1.49,
		Social:         1.49,
		Lo:             lo,
		Hi:             hi,
		SampleDt:       1,
		K:              1,
		Resample:       1,
		ResampleGrowth: 2,
		MaxRounds:      20,
	}
}

func (c *Config) validate(d int) error {
	if c.Particles < 2 {
		return errors.New("pso: need at least 2 particles")
	}
	if c.Iterations < 1 {
		return errors.New("pso: need at least 1 iteration")
	}
	if len(c.Lo) != d || len(c.Hi) != d {
		return fmt.Errorf("pso: bounds have %d/%d entries, want %d", len(c.Lo), len(c.Hi), d)
	}
	for i := range c.Lo {
		if !(c.Lo[i] < c.Hi[i]) {
			return fmt.Errorf("pso: bounds[%d] = [%v, %v] empty", i, c.Lo[i], c.Hi[i])
		}
	}
	if c.SampleDt <= 0 || c.Resample <= 0 || c.ResampleGrowth < 1 || c.MaxRounds < 0 {
		return errors.New("pso: invalid sampling configuration")
	}
	return nil
}

// Result summarizes a swarm run.
type Result struct {
	// BestX is the global-best position.
	BestX []float64
	// BestG is its noisy estimate at termination.
	BestG float64
	// BestSigma is the standard deviation of BestG.
	BestSigma float64
	// Iterations is the number of completed swarm updates.
	Iterations int
	// Walltime is the elapsed virtual time.
	Walltime float64
	// Evaluations is the cumulative sampling count from the space.
	Evaluations int64
	// ResampleRounds counts indeterminate-comparison resampling rounds.
	ResampleRounds int
	// Termination names what stopped the swarm: "iterations", "walltime",
	// or "canceled" (the context ended; the result holds the best found so
	// far).
	Termination string
}

type particle struct {
	x, v  []float64
	pbest sim.Point
}

// Optimize runs the swarm on the space. Particles are initialized uniformly
// in the box with velocities up to half the box width.
func Optimize(space sim.Space, cfg Config) (*Result, error) {
	return OptimizeContext(context.Background(), space, cfg)
}

// OptimizeContext is Optimize with cancellation: every sampling batch is
// dispatched through the space's concurrent path (sim.SampleBatch) under
// ctx. As in the simplex optimizers, cancellation is a termination
// criterion, not an error — the swarm stops within one sampling round and
// the Result reports Termination "canceled" with the best position found so
// far.
func OptimizeContext(ctx context.Context, space sim.Space, cfg Config) (*Result, error) {
	d := space.Dim()
	if err := cfg.validate(d); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	clock := space.Clock()
	start := clock.Now()

	res := &Result{}
	canceled := false
	var fatal error
	// sample dispatches one concurrent batch under ctx. Cancellation flips
	// the canceled flag (a termination criterion); any other batch error (a
	// dead backend) is fatal and aborts the run.
	sample := func(pts []sim.Point, dt float64) bool {
		if canceled || fatal != nil {
			return false
		}
		err := sim.SampleBatch(ctx, space, pts, dt)
		switch {
		case err == nil:
			return true
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			canceled = true
		default:
			fatal = err
		}
		return false
	}

	swarm := make([]*particle, 0, cfg.Particles)
	var gbest sim.Point
	closeAll := func() {
		for _, p := range swarm {
			p.pbest.Close()
		}
	}
	for i := 0; i < cfg.Particles; i++ {
		x := make([]float64, d)
		v := make([]float64, d)
		for j := 0; j < d; j++ {
			w := cfg.Hi[j] - cfg.Lo[j]
			x[j] = cfg.Lo[j] + w*rng.Float64()
			v[j] = (rng.Float64() - 0.5) * w
		}
		pt := space.NewPoint(x)
		if !sample([]sim.Point{pt}, cfg.SampleDt) {
			pt.Close()
			if fatal != nil {
				closeAll()
				return nil, fatal
			}
			// Canceled before the swarm finished initializing: report the
			// best of the particles sampled so far, if any.
			res.Termination = "canceled"
			if gbest != nil {
				est := gbest.Estimate()
				res.BestX = append([]float64(nil), gbest.X()...)
				res.BestG = est.Mean
				res.BestSigma = est.Sigma
			}
			res.Walltime = clock.Now() - start
			res.Evaluations = space.Evaluations()
			closeAll()
			return res, nil
		}
		swarm = append(swarm, &particle{x: append([]float64(nil), x...), v: v, pbest: pt})
		if gbest == nil || pt.Estimate().Mean < gbest.Estimate().Mean {
			gbest = pt
		}
	}

	overBudget := func() bool {
		return cfg.MaxWalltime > 0 && clock.Now()-start >= cfg.MaxWalltime
	}
	emitTrace := func() {
		if cfg.Trace == nil {
			return
		}
		est := gbest.Estimate()
		underlying := math.NaN()
		if f, ok := sim.Underlying(gbest); ok {
			underlying = f
		}
		cfg.Trace(core.TraceEvent{
			Iter:           res.Iterations,
			Time:           clock.Now() - start,
			Best:           est.Mean,
			BestX:          append([]float64(nil), gbest.X()...),
			BestUnderlying: underlying,
			Move:           core.MoveNone,
		})
	}

	// confidentlyBelow resolves "a below b" at cfg.K sigma, resampling both
	// while indeterminate; falls back to plain means at the round cap, the
	// walltime budget, or cancellation.
	confidentlyBelow := func(a, b sim.Point) bool {
		if cfg.K == 0 {
			return a.Estimate().Mean < b.Estimate().Mean
		}
		dt := cfg.Resample
		for rounds := 0; ; rounds++ {
			ea, eb := a.Estimate(), b.Estimate()
			if ea.Mean+cfg.K*ea.Sigma < eb.Mean-cfg.K*eb.Sigma {
				return true
			}
			if ea.Mean-cfg.K*ea.Sigma >= eb.Mean+cfg.K*eb.Sigma {
				return false
			}
			if rounds >= cfg.MaxRounds || overBudget() {
				return ea.Mean < eb.Mean
			}
			if !sample([]sim.Point{a, b}, dt) {
				return ea.Mean < eb.Mean
			}
			dt *= cfg.ResampleGrowth
			res.ResampleRounds++
		}
	}

	for iter := 0; iter < cfg.Iterations && !overBudget() && !canceled && fatal == nil; iter++ {
		for _, p := range swarm {
			gx := gbest.X()
			px := p.pbest.X()
			for j := 0; j < d; j++ {
				p.v[j] = cfg.Inertia*p.v[j] +
					cfg.Cognitive*rng.Float64()*(px[j]-p.x[j]) +
					cfg.Social*rng.Float64()*(gx[j]-p.x[j])
				p.x[j] += p.v[j]
				// Reflect at the box bounds.
				if p.x[j] < cfg.Lo[j] {
					p.x[j] = 2*cfg.Lo[j] - p.x[j]
					p.v[j] = -p.v[j]
				}
				if p.x[j] > cfg.Hi[j] {
					p.x[j] = 2*cfg.Hi[j] - p.x[j]
					p.v[j] = -p.v[j]
				}
				if p.x[j] < cfg.Lo[j] {
					p.x[j] = cfg.Lo[j] // degenerate overshoot
				}
			}
			cand := space.NewPoint(p.x)
			if !sample([]sim.Point{cand}, cfg.SampleDt) {
				// Canceled (or failed) mid-update: abandon the candidate and
				// let the outer loop terminate.
				cand.Close()
				break
			}
			if confidentlyBelow(cand, p.pbest) {
				if p.pbest == gbest {
					// The global best is being replaced as a personal best;
					// re-elect below rather than closing a live reference.
					gbest = cand
					p.pbest.Close()
				} else {
					p.pbest.Close()
				}
				p.pbest = cand
			} else {
				cand.Close()
			}
			if p.pbest != gbest && confidentlyBelow(p.pbest, gbest) {
				gbest = p.pbest
			}
		}
		if canceled || fatal != nil {
			break
		}
		res.Iterations++
		emitTrace()
	}
	if fatal != nil {
		closeAll()
		return nil, fatal
	}

	est := gbest.Estimate()
	res.BestX = append([]float64(nil), gbest.X()...)
	res.BestG = est.Mean
	res.BestSigma = est.Sigma
	res.Walltime = clock.Now() - start
	res.Evaluations = space.Evaluations()
	switch {
	case canceled:
		res.Termination = "canceled"
	case res.Iterations < cfg.Iterations:
		res.Termination = "walltime"
	default:
		res.Termination = "iterations"
	}
	closeAll()
	return res, nil
}

// HybridConfig couples a global swarm phase with a local stochastic-simplex
// refinement around the swarm's best point.
type HybridConfig struct {
	// PSO is the global phase configuration.
	PSO Config
	// Local is the refinement configuration (typically MN or PC).
	Local core.Config
	// LocalScale gives the refinement simplex edge lengths per dimension.
	LocalScale []float64
}

// OptimizeHybrid runs the PSO global phase, then refines its best point with
// the stochastic simplex, returning the refinement result (whose BestX is at
// least as good as the swarm's, at the local algorithm's confidence).
func OptimizeHybrid(space sim.Space, cfg HybridConfig) (*core.Result, *Result, error) {
	return OptimizeHybridContext(context.Background(), space, cfg)
}

// OptimizeHybridContext is OptimizeHybrid with cancellation. A context
// canceled during the global phase skips the local refinement and returns a
// nil local result with the partial swarm result; canceled during the local
// phase, the local result reports Termination "canceled" as usual.
func OptimizeHybridContext(ctx context.Context, space sim.Space, cfg HybridConfig) (*core.Result, *Result, error) {
	d := space.Dim()
	if len(cfg.LocalScale) != d {
		return nil, nil, fmt.Errorf("pso: LocalScale has %d entries, want %d", len(cfg.LocalScale), d)
	}
	global, err := OptimizeContext(ctx, space, cfg.PSO)
	if err != nil {
		return nil, nil, err
	}
	if global.Termination == "canceled" || global.BestX == nil {
		global.Termination = "canceled"
		return nil, global, nil
	}
	initial := make([][]float64, d+1)
	initial[0] = append([]float64(nil), global.BestX...)
	for i := 0; i < d; i++ {
		v := append([]float64(nil), global.BestX...)
		v[i] += cfg.LocalScale[i]
		initial[i+1] = v
	}
	local, err := core.OptimizeContext(ctx, space, initial, cfg.Local)
	if err != nil {
		return nil, nil, err
	}
	if math.IsNaN(local.BestG) {
		return nil, nil, errors.New("pso: local refinement produced no estimate")
	}
	return local, global, nil
}
