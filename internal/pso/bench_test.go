package pso

import (
	"testing"

	"repro/internal/core"
	"repro/internal/testfunc"
)

func BenchmarkSwarmIteration(b *testing.B) {
	sp := space(testfunc.Rastrigin, 3, 5, 1)
	lo, hi := bounds(3, -5.12, 5.12)
	cfg := DefaultConfig(lo, hi)
	cfg.Iterations = 1
	cfg.Seed = 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(sp, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHybrid(b *testing.B) {
	lo, hi := bounds(2, -5.12, 5.12)
	for i := 0; i < b.N; i++ {
		sp := space(testfunc.Rastrigin, 2, 1, int64(i+1))
		pcfg := DefaultConfig(lo, hi)
		pcfg.Iterations = 10
		pcfg.Seed = int64(i + 1)
		lcfg := core.DefaultConfig(core.PC)
		lcfg.MaxWalltime = 5e3
		lcfg.Tol = 1e-4
		if _, _, err := OptimizeHybrid(sp, HybridConfig{
			PSO: pcfg, Local: lcfg, LocalScale: []float64{0.2, 0.2},
		}); err != nil {
			b.Fatal(err)
		}
	}
}
