package pso

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/testfunc"
)

func space(f func([]float64) float64, dim int, sigma float64, seed int64) *sim.LocalSpace {
	return sim.NewLocalSpace(sim.LocalConfig{
		Dim: dim, F: f, Sigma0: sim.ConstSigma(sigma), Seed: seed, Parallel: true,
	})
}

func bounds(d int, lo, hi float64) ([]float64, []float64) {
	l := make([]float64, d)
	h := make([]float64, d)
	for i := range l {
		l[i], h[i] = lo, hi
	}
	return l, h
}

func TestConfigValidation(t *testing.T) {
	sp := space(testfunc.Sphere, 2, 0, 1)
	lo, hi := bounds(2, -1, 1)
	bad := []func(*Config){
		func(c *Config) { c.Particles = 1 },
		func(c *Config) { c.Iterations = 0 },
		func(c *Config) { c.Lo = c.Lo[:1] },
		func(c *Config) { c.Hi[0] = c.Lo[0] },
		func(c *Config) { c.SampleDt = 0 },
		func(c *Config) { c.ResampleGrowth = 0.5 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(lo, hi)
		mutate(&cfg)
		if _, err := Optimize(sp, cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNoiselessSphere(t *testing.T) {
	sp := space(testfunc.Sphere, 3, 0, 1)
	lo, hi := bounds(3, -5, 5)
	cfg := DefaultConfig(lo, hi)
	cfg.Seed = 2
	res, err := Optimize(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f := testfunc.Sphere(res.BestX); f > 0.1 {
		t.Fatalf("PSO sphere best %v (f=%v)", res.BestX, f)
	}
	if res.Iterations != cfg.Iterations {
		t.Fatalf("iterations = %d", res.Iterations)
	}
}

// The headline motivation (section 5.2): on a multimodal surface, a simplex
// from a poor start gets trapped in a local minimum, while PSO finds the
// global basin. Rastrigin's local minima sit on the integer grid with values
// >= 1, so "found the global basin" is f < 1.
func TestPSOEscapesLocalMinimaWhereSimplexTraps(t *testing.T) {
	// Simplex from a corner of the box: converges to a nearby local min.
	spS := space(testfunc.Rastrigin, 2, 0, 3)
	cfg := core.DefaultConfig(core.DET)
	cfg.Tol = 1e-9
	simplexRes, err := core.Optimize(spS, [][]float64{{4.2, 4.3}, {4.4, 4.2}, {4.3, 4.5}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fSimplex := testfunc.Rastrigin(simplexRes.BestX)
	if fSimplex < 1 {
		t.Fatalf("test premise broken: simplex reached the global basin (f=%v)", fSimplex)
	}

	spP := space(testfunc.Rastrigin, 2, 0, 4)
	lo, hi := bounds(2, -5.12, 5.12)
	pcfg := DefaultConfig(lo, hi)
	pcfg.Particles = 30
	pcfg.Iterations = 80
	pcfg.Seed = 5
	psoRes, err := Optimize(spP, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if f := testfunc.Rastrigin(psoRes.BestX); f >= 1 {
		t.Fatalf("PSO did not reach the global basin: f=%v at %v", f, psoRes.BestX)
	}
}

// Noise-aware best-updates (K=1) must beat the noise-blind swarm (K=0) under
// heavy noise, aggregated over seeds: with plain means, lucky noise draws
// corrupt the personal bests ("the underlying algorithm gets the misleading
// information").
func TestNoiseAwareBeatsNoiseBlind(t *testing.T) {
	var aware, blind float64
	const trials = 8
	for s := int64(0); s < trials; s++ {
		run := func(k float64) float64 {
			sp := space(testfunc.Sphere, 3, 50, 100+s)
			lo, hi := bounds(3, -5, 5)
			cfg := DefaultConfig(lo, hi)
			cfg.K = k
			cfg.Seed = 200 + s
			cfg.Iterations = 40
			res, err := Optimize(sp, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return testfunc.Sphere(res.BestX)
		}
		aware += math.Log10(run(1) + 1e-9)
		blind += math.Log10(run(0) + 1e-9)
	}
	if aware >= blind {
		t.Fatalf("noise-aware mean log-error %.3f not better than noise-blind %.3f",
			aware/trials, blind/trials)
	}
}

func TestBoundsRespected(t *testing.T) {
	sp := space(testfunc.Rastrigin, 2, 10, 6)
	lo, hi := bounds(2, -2, 2)
	cfg := DefaultConfig(lo, hi)
	cfg.Seed = 7
	cfg.Iterations = 30
	res, err := Optimize(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range res.BestX {
		if v < lo[j]-1e-9 || v > hi[j]+1e-9 {
			t.Fatalf("best[%d] = %v outside [%v, %v]", j, v, lo[j], hi[j])
		}
	}
}

func TestWalltimeBudget(t *testing.T) {
	sp := space(testfunc.Sphere, 2, 100, 8)
	lo, hi := bounds(2, -5, 5)
	cfg := DefaultConfig(lo, hi)
	cfg.Seed = 9
	cfg.Iterations = 100000
	cfg.MaxWalltime = 500
	res, err := Optimize(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= 100000 {
		t.Fatal("walltime budget ignored")
	}
}

// Hybrid: a deliberately coarse swarm phase locates the global basin, then
// the stochastic simplex supplies the precision PSO lacks "in refined search
// stages" (section 5.2). The refinement must substantially improve the
// swarm's imprecise best.
func TestHybridRefinesCoarsePSO(t *testing.T) {
	sp := space(testfunc.Rastrigin, 2, 1, 10)
	lo, hi := bounds(2, -5.12, 5.12)
	pcfg := DefaultConfig(lo, hi)
	pcfg.Seed = 11
	pcfg.Particles = 25
	pcfg.Iterations = 8 // coarse: basin located, floor not reached

	lcfg := core.DefaultConfig(core.PC)
	lcfg.MaxWalltime = 3e4
	lcfg.Tol = 1e-4

	local, global, err := OptimizeHybrid(sp, HybridConfig{
		PSO:        pcfg,
		Local:      lcfg,
		LocalScale: []float64{0.2, 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	fGlobal := testfunc.Rastrigin(global.BestX)
	fLocal := testfunc.Rastrigin(local.BestX)
	if fGlobal < 0.3 {
		t.Skipf("swarm already converged (f=%v); nothing to assert", fGlobal)
	}
	if fLocal >= fGlobal {
		t.Fatalf("refinement did not improve: %v -> %v", fGlobal, fLocal)
	}
	if fLocal > 1 {
		t.Fatalf("hybrid missed the global basin floor: f=%v (swarm had %v)", fLocal, fGlobal)
	}
}

func TestHybridValidation(t *testing.T) {
	sp := space(testfunc.Sphere, 2, 0, 1)
	lo, hi := bounds(2, -1, 1)
	_, _, err := OptimizeHybrid(sp, HybridConfig{
		PSO:        DefaultConfig(lo, hi),
		Local:      core.DefaultConfig(core.DET),
		LocalScale: []float64{0.1}, // wrong length
	})
	if err == nil {
		t.Fatal("wrong LocalScale length accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		sp := space(testfunc.Sphere, 2, 5, 33)
		lo, hi := bounds(2, -3, 3)
		cfg := DefaultConfig(lo, hi)
		cfg.Seed = 44
		cfg.Iterations = 15
		res, err := Optimize(sp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.BestG
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}
