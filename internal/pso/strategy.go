package pso

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// This file plugs the swarm into the core strategy registry, which is what
// makes the paper's §5.2 future-work direction a first-class citizen of the
// whole stack: "pso" and "hybrid" can be selected by name through repro.Run,
// jobs.Spec.Algorithm and the optd HTTP API, and they inherit cancellation
// and tracing from the shared driver. Neither supports checkpoint/resume
// (the swarm state is not snapshottable yet), which Resumable reports so the
// driver and the jobs manager can refuse resume and skip checkpointing.

func init() {
	core.Register(psoStrategy{}, "swarm")
	core.Register(hybridStrategy{}, "pso+nm", "pso+simplex")
}

// swarmConfig derives the swarm parameters from the strategy-agnostic spec:
// the uniform-draw box becomes the search box, the PC confidence multiplier
// becomes the best-update confidence, and the sampling schedule (initial
// allotment, resample increment and growth, round cap, walltime budget)
// carries over field for field.
func swarmConfig(d int, spec *core.RunSpec) Config {
	lo := make([]float64, d)
	hi := make([]float64, d)
	for i := range lo {
		lo[i], hi[i] = spec.Lo, spec.Hi
	}
	cfg := DefaultConfig(lo, hi)
	c := spec.Config
	cfg.Seed = spec.Seed
	cfg.K = c.K
	cfg.SampleDt = c.InitialSample
	cfg.Resample = c.Resample
	cfg.ResampleGrowth = c.ResampleGrowth
	cfg.MaxRounds = c.MaxWaitRounds
	cfg.MaxWalltime = c.MaxWalltime
	cfg.Trace = c.Trace
	if spec.Particles > 0 {
		cfg.Particles = spec.Particles
	}
	if spec.SwarmIters > 0 {
		cfg.Iterations = spec.SwarmIters
	}
	return cfg
}

// validateSwarmSpec holds the checks shared by the pso and hybrid strategies.
func validateSwarmSpec(name string, space sim.Space, spec *core.RunSpec) error {
	if spec.Initial != nil {
		return fmt.Errorf("pso: strategy %q draws its own swarm; an explicit initial simplex is not supported (provide the search box instead)", name)
	}
	if !spec.HasBox {
		return fmt.Errorf("pso: strategy %q needs a search box: provide uniform bounds (lo, hi)", name)
	}
	if spec.Restarts != 0 {
		return fmt.Errorf("pso: strategy %q does not take restarts (the swarm is the global phase)", name)
	}
	cfg := swarmConfig(space.Dim(), spec)
	return cfg.validate(space.Dim())
}

// asCore maps a swarm result onto the shared Result shape. The swarm makes
// no simplex moves, so the move counters stay zero and there is no final
// simplex.
func (r *Result) asCore() *core.Result {
	return &core.Result{
		BestX:          r.BestX,
		BestG:          r.BestG,
		BestSigma:      r.BestSigma,
		Iterations:     r.Iterations,
		Walltime:       r.Walltime,
		Evaluations:    r.Evaluations,
		Termination:    r.Termination,
		ResampleRounds: r.ResampleRounds,
	}
}

// psoStrategy runs the plain noise-aware particle swarm.
type psoStrategy struct{}

func (psoStrategy) Name() string    { return "pso" }
func (psoStrategy) Resumable() bool { return false }

func (psoStrategy) Validate(space sim.Space, spec *core.RunSpec) error {
	return validateSwarmSpec("pso", space, spec)
}

func (psoStrategy) Run(ctx context.Context, space sim.Space, spec *core.RunSpec) (*core.Result, error) {
	res, err := OptimizeContext(ctx, space, swarmConfig(space.Dim(), spec))
	if err != nil {
		return nil, err
	}
	return res.asCore(), nil
}

// hybridStrategy runs the swarm global phase, then the stochastic simplex as
// the local refinement subroutine (§1.3.5.1 / §5.2). The local decision
// policy is spec.Config.Algorithm (PC unless overridden) and the refinement
// simplex edge lengths come from spec.RestartScale (1.0 per dimension by
// default).
type hybridStrategy struct{}

func (hybridStrategy) Name() string    { return "hybrid" }
func (hybridStrategy) Resumable() bool { return false }

func (hybridStrategy) Validate(space sim.Space, spec *core.RunSpec) error {
	if err := validateSwarmSpec("hybrid", space, spec); err != nil {
		return err
	}
	// The local leg must be rejected now, not after the whole swarm phase
	// has sampled.
	if err := spec.Config.Validate(space.Dim()); err != nil {
		return err
	}
	_, err := spec.ScaleVector(space.Dim())
	return err
}

func (hybridStrategy) Run(ctx context.Context, space sim.Space, spec *core.RunSpec) (*core.Result, error) {
	scale, err := spec.ScaleVector(space.Dim())
	if err != nil {
		return nil, err
	}
	hcfg := HybridConfig{
		PSO:        swarmConfig(space.Dim(), spec),
		Local:      spec.Config,
		LocalScale: scale,
	}
	local, global, err := OptimizeHybridContext(ctx, space, hcfg)
	if err != nil {
		return nil, err
	}
	if local == nil {
		// Canceled during the global phase: report the partial swarm result.
		return global.asCore(), nil
	}
	// Fold the global phase's effort into the returned result so service
	// accounting (job iteration counters, walltime) covers both phases.
	// Evaluations is already cumulative on the space.
	combined := *local
	combined.Iterations += global.Iterations
	combined.ResampleRounds += global.ResampleRounds
	combined.Walltime += global.Walltime
	return &combined, nil
}
