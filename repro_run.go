package repro

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
)

// Run is the single public entry point for optimization: it covers plain,
// restarted, and resumed runs of every registered strategy through
// functional options.
//
//	res, err := repro.Run(ctx, space,
//	    repro.WithAlgorithm(repro.PC),
//	    repro.WithUniformSimplex(seed, -5, 5),
//	    repro.WithBudget(1e5),
//	)
//
// With no options, Run executes the PC policy with the paper's default
// parameters; a starting simplex (WithInitialSimplex, WithUniformSimplex, or
// WithResume) is required. Options apply in order, so later options win when
// they touch the same setting. Invalid combinations (resume plus an explicit
// initial simplex, checkpointing a strategy that cannot resume, an empty
// draw box, ...) return descriptive errors before any sampling happens.
//
// Cancellation is a termination criterion, not an error: when ctx ends, the
// run stops within one sampling round and the Result reports Termination
// "canceled".
func Run(ctx context.Context, space Space, opts ...RunOption) (*Result, error) {
	r, err := NewRunner(opts...)
	if err != nil {
		return nil, err
	}
	return r.Run(ctx, space)
}

// Runner is a reusable, validated bundle of Run options: build it once with
// NewRunner and execute it on any number of spaces (one at a time). The
// zero value is not useful; a Runner is immutable after construction, so it
// is safe for concurrent use with distinct spaces.
type Runner struct {
	spec core.RunSpec
}

// NewRunner validates the option set and returns a reusable Runner.
// Strategy-specific validation (simplex shape against the space dimension,
// swarm parameters) happens per Run call, since it needs the space.
func NewRunner(opts ...RunOption) (*Runner, error) {
	o := &runOptions{spec: core.RunSpec{Strategy: "pc", Config: core.DefaultConfig(core.PC)}}
	for _, opt := range opts {
		if opt == nil {
			o.errs = append(o.errs, errors.New("repro: nil RunOption"))
			continue
		}
		opt(o)
	}
	if o.setInitial && o.setBox {
		o.errs = append(o.errs, errors.New("repro: WithInitialSimplex and WithUniformSimplex are mutually exclusive"))
	}
	if o.setResume && o.setInitial {
		o.errs = append(o.errs, errors.New("repro: WithResume and WithInitialSimplex are mutually exclusive (the snapshot already carries the simplex)"))
	}
	if err := errors.Join(o.errs...); err != nil {
		return nil, err
	}
	return &Runner{spec: o.spec}, nil
}

// Run executes the configured optimization on the space under ctx.
func (r *Runner) Run(ctx context.Context, space Space) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return core.Run(ctx, space, r.spec)
}

// Strategy returns the canonical name of the strategy the Runner resolves
// to, or an error for an unknown name.
func (r *Runner) Strategy() (string, error) {
	s, err := core.LookupStrategy(r.spec.Strategy)
	if err != nil {
		return "", err
	}
	return s.Name(), nil
}

// runOptions accumulates the option set; misuse is collected as errors and
// reported by NewRunner rather than panicking mid-configuration.
type runOptions struct {
	spec       core.RunSpec
	setInitial bool
	setBox     bool
	setResume  bool
	errs       []error
}

// RunOption configures one aspect of a Run call.
type RunOption func(*runOptions)

// WithAlgorithm selects one of the NM-family decision policies (DET, MN, PC,
// PCMN, AndersonNM) by its Algorithm value. For non-simplex strategies such
// as "pso" use WithStrategy.
func WithAlgorithm(alg Algorithm) RunOption {
	return func(o *runOptions) {
		o.spec.Strategy = alg.String()
		o.spec.Config.Algorithm = alg
	}
}

// WithStrategy selects the optimizer by strategy-registry name — any value
// from Strategies(), canonical or alias, case-insensitive: "pc", "pc+mn"
// (aliases "pcmn", "pc-mn"), "pso", "hybrid", ...
func WithStrategy(name string) RunOption {
	return func(o *runOptions) { o.spec.Strategy = name }
}

// WithConfig replaces the full optimizer configuration (decision-policy
// parameters, sampling schedule, budgets, callbacks) and selects the
// strategy matching cfg.Algorithm. Use it to port code from the deprecated
// Optimize-family entry points verbatim, or when an option for a niche
// Config field does not exist.
func WithConfig(cfg Config) RunOption {
	return func(o *runOptions) {
		o.spec.Config = cfg
		o.spec.Strategy = cfg.Algorithm.String()
	}
}

// WithInitialSimplex starts the run from an explicit simplex of d+1 vertices
// of dimension d — the one piece of human input the paper deliberately does
// not automate.
func WithInitialSimplex(vertices [][]float64) RunOption {
	return func(o *runOptions) {
		if vertices == nil {
			vertices = [][]float64{}
		}
		o.spec.Initial = vertices
		o.setInitial = true
	}
}

// WithUniformSimplex draws the starting simplex with coordinates uniform
// over [lo, hi) from seed — the shared draw used by the CLIs and job specs,
// so one seed reproduces the same start everywhere. For the pso and hybrid
// strategies the same box bounds the swarm and the seed drives it.
func WithUniformSimplex(seed int64, lo, hi float64) RunOption {
	return func(o *runOptions) {
		if !(lo < hi) {
			o.errs = append(o.errs, fmt.Errorf("repro: WithUniformSimplex box [%v, %v) is empty", lo, hi))
			return
		}
		o.spec.Seed = seed
		o.spec.Lo, o.spec.Hi = lo, hi
		o.spec.HasBox = true
		o.setBox = true
	}
}

// WithRestarts enables the paper's §1.3.5.1 restart strategy: after each
// convergence a fresh simplex is rebuilt around the incumbent, n times. The
// scale gives the rebuilt simplex's edge lengths: one value per dimension, a
// single value broadcast to every dimension, or none for 1.0 everywhere.
func WithRestarts(n int, scale ...float64) RunOption {
	return func(o *runOptions) {
		if n < 0 {
			o.errs = append(o.errs, fmt.Errorf("repro: WithRestarts(%d): restarts must be >= 0", n))
			return
		}
		o.spec.Restarts = n
		o.spec.RestartScale = append([]float64(nil), scale...)
	}
}

// WithRestartDecay multiplies the restart scale by f after each leg (default
// 0.5), so later restarts probe progressively finer neighbourhoods.
func WithRestartDecay(f float64) RunOption {
	return func(o *runOptions) { o.spec.ScaleDecay = f }
}

// WithCheckpoint delivers a Snapshot of the complete optimizer state to fn
// every `every` iterations (every iteration when every <= 0). The space must
// implement Snapshotter and the strategy must support resume. A run resumed
// from any delivered snapshot (WithResume) is bitwise identical to the
// uninterrupted run.
func WithCheckpoint(fn func(*Snapshot), every int) RunOption {
	return func(o *runOptions) {
		o.spec.Config.Checkpoint = fn
		o.spec.Config.CheckpointEvery = every
	}
}

// WithResume continues a checkpointed run from its snapshot instead of
// starting fresh. The space must be built from the same construction
// parameters (objective, noise law, seed) as the snapshotted run.
func WithResume(snap *Snapshot) RunOption {
	return func(o *runOptions) {
		if snap == nil {
			o.errs = append(o.errs, errors.New("repro: WithResume: nil snapshot"))
			return
		}
		o.spec.Resume = snap
		o.setResume = true
	}
}

// WithSpeculation enables batch-speculative candidate evaluation for the
// NM-family strategies: each simplex step submits the reflection, expansion
// and contraction candidates (plus the shrink vertices when a collapse is
// plausible) as one prioritized sampling batch before the decision, then
// keeps the accepted move and discards the rest. A step costs one batch
// round-trip instead of up to four sequential ones, cutting per-step latency
// on pools of >= 3 workers at the price of some discarded evaluations
// (Result.SpeculativeWaste). Speculative runs are bitwise-deterministic at
// any worker count and checkpoint/resume-exact, but follow a different —
// equally valid — trajectory than sequential runs. The space must support
// prioritized wide batches (LocalSpace does); backends that pin each live
// point to a bounded worker rank, like the MW deployment, are rejected with
// a descriptive error before any sampling.
func WithSpeculation() RunOption {
	return func(o *runOptions) { o.spec.Config.Speculative = true }
}

// WithAdaptiveSamples replaces the fixed initial sampling allotment of fresh
// points with variance-adaptive growth: every new point samples in
// geometrically growing rounds until the confidence half-width of its
// estimate (1.96 sigma; override via WithConfig's AdaptiveZ) falls to
// halfWidth. The driver remembers the largest allotment a point needed and
// starts subsequent points there, a counter that is part of the snapshot
// state, so checkpoint/resume stays bitwise-exact. It applies to the
// NM-family strategies (and the simplex leg of the hybrid); the pso swarm
// phase samples on its own schedule.
func WithAdaptiveSamples(halfWidth float64) RunOption {
	return func(o *runOptions) {
		if halfWidth <= 0 {
			o.errs = append(o.errs, fmt.Errorf("repro: WithAdaptiveSamples(%v): half-width must be positive", halfWidth))
			return
		}
		o.spec.Config.AdaptiveSamples = true
		o.spec.Config.AdaptiveHalfWidth = halfWidth
	}
}

// WithFleet farms the run's sampling out to a remote worker fleet: every
// batch's increments are dispatched to the agents registered with the
// coordinator (see NewFleetCoordinator and cmd/optworker) instead of the
// in-process pool. The space must be a fresh LocalSpace, and objective must
// name — in the workers' catalogs — the same function the space computes
// (workers cross-check every value, so a mismatch fails the run loudly).
// Because every sampling increment is a pure function of the point's stream
// seed and draw index, results are bitwise identical to in-process runs at
// any fleet size and under worker death: the coordinator re-dispatches the
// outstanding tasks of dead workers to the survivors.
func WithFleet(fleet FleetSampler, objective string) RunOption {
	return func(o *runOptions) {
		if fleet == nil {
			o.errs = append(o.errs, errors.New("repro: WithFleet: nil fleet"))
			return
		}
		if objective == "" {
			o.errs = append(o.errs, errors.New("repro: WithFleet: empty objective name"))
			return
		}
		o.spec.Fleet = fleet
		o.spec.FleetObjective = objective
	}
}

// WithTrace registers a per-iteration progress callback (one TraceEvent per
// simplex step, or per swarm update for pso-family strategies).
func WithTrace(fn func(TraceEvent)) RunOption {
	return func(o *runOptions) { o.spec.Config.Trace = fn }
}

// WithBudget bounds the run to walltime virtual seconds of sampling (the
// paper's second termination criterion). Zero means unlimited.
func WithBudget(walltime float64) RunOption {
	return func(o *runOptions) { o.spec.Config.MaxWalltime = walltime }
}

// WithMaxIterations caps the simplex steps. Zero means unlimited.
func WithMaxIterations(n int) RunOption {
	return func(o *runOptions) { o.spec.Config.MaxIterations = n }
}

// WithTolerance sets the spread termination tolerance (eq 2.9); zero
// disables the tolerance criterion (run to budget).
func WithTolerance(tol float64) RunOption {
	return func(o *runOptions) { o.spec.Config.Tol = tol }
}

// WithConfidence sets the k-sigma confidence separation: the PC comparison
// multiplier K and the MN wait factor MNK together, matching the -k flag of
// the CLIs. For pso-family strategies it is the best-update confidence.
func WithConfidence(k float64) RunOption {
	return func(o *runOptions) {
		o.spec.Config.K = k
		o.spec.Config.MNK = k
	}
}

// WithSwarm sizes the pso-family global phase: particles in the swarm and
// the number of swarm updates. Zero keeps a value at the strategy default
// (20 particles, 60 updates).
func WithSwarm(particles, iterations int) RunOption {
	return func(o *runOptions) {
		if particles < 0 || iterations < 0 {
			o.errs = append(o.errs, fmt.Errorf("repro: WithSwarm(%d, %d): sizes must be >= 0", particles, iterations))
			return
		}
		o.spec.Particles = particles
		o.spec.SwarmIters = iterations
	}
}

// Strategy registry surface. A Strategy is one pluggable optimizer; the
// five NM-family policies plus "pso" and "hybrid" are registered by default.
// Third-party optimizers implement Strategy (against the re-exported Space,
// RunSpec and Result types) and call RegisterStrategy from an init function;
// from then on they are selectable by name through Run, job specs and the
// optd HTTP API. See docs/ARCHITECTURE.md for the contract.
type (
	// Strategy is the pluggable-optimizer interface (name, validate,
	// run-from-state, resumability).
	Strategy = core.Strategy
	// RunSpec is the resolved run description a Strategy consumes.
	RunSpec = core.RunSpec
	// StrategyInfo describes one registered strategy.
	StrategyInfo = core.StrategyInfo
)

// RegisterStrategy adds a strategy (plus optional alias names) to the
// process-wide registry. It panics on duplicates; call it from init.
func RegisterStrategy(s Strategy, aliases ...string) { core.Register(s, aliases...) }

// Strategies returns the canonical names of every registered strategy,
// sorted.
func Strategies() []string { return core.Strategies() }

// StrategyInfos describes every registered strategy (name, aliases,
// resumability, NM-family policy if any), sorted by name.
func StrategyInfos() []StrategyInfo { return core.StrategyInfos() }
