package repro_test

import (
	"context"
	"fmt"

	"repro"
)

// rosenbrock2 is the classic banana function in two dimensions; its minimum
// is 0 at (1, 1).
func rosenbrock2(x []float64) float64 {
	a := x[1] - x[0]*x[0]
	b := 1 - x[0]
	return 100*a*a + b*b
}

// ExampleRun runs the point-to-point comparison algorithm (Algorithm 3)
// on a noisy 2-D Rosenbrock objective and checks the optimum was found. The
// objective is observed through sampling noise whose variance decays as
// sigma0^2/t (eq 1.2); PC only commits a simplex move once the comparison is
// resolved at a k-sigma confidence. Functional options select the strategy,
// the starting simplex and the budget; the same pattern covers restarts
// (WithRestarts), checkpoints (WithCheckpoint), resumption (WithResume) and
// the global strategies (WithStrategy("pso"), WithStrategy("hybrid")).
func ExampleRun() {
	space := repro.NewLocalSpace(repro.LocalConfig{
		Dim:      2,
		F:        rosenbrock2,
		Sigma0:   repro.ConstSigma(5),
		Seed:     42,
		Parallel: true, // vertices sample concurrently on the virtual clock
	})

	initial := [][]float64{{-2, 2}, {3, 1}, {0, -2}}
	res, err := repro.Run(context.Background(), space,
		repro.WithAlgorithm(repro.PC),
		repro.WithInitialSimplex(initial),
		repro.WithBudget(1e5), // virtual seconds of sampling budget
	)
	if err != nil {
		fmt.Println("optimize:", err)
		return
	}

	// The initial vertices score in the hundreds; the run descends into the
	// flat Rosenbrock valley (noise sigma0=5 swamps the final approach to
	// the exact minimum, exactly the regime the paper studies).
	fmt.Printf("reached the valley floor (f < 2): %v\n", rosenbrock2(res.BestX) < 2)
	fmt.Printf("ran some simplex steps: %v\n", res.Iterations > 0)
	// Output:
	// reached the valley floor (f < 2): true
	// ran some simplex steps: true
}

// Example_concurrentSampling gives the space a private 4-worker pool, so the
// d+1 vertex evaluations of every batch execute concurrently (the in-process
// analogue of the paper's one-worker-per-vertex deployment), and bounds the
// run with a cancellable context. Per-point deterministic noise streams make
// the result bitwise identical to a serial (Workers: 1) run of the same
// seed.
func Example_concurrentSampling() {
	expensive := func(x []float64, dt float64) {
		// Stand-in for the real per-increment simulation cost (an MD
		// trajectory segment in the paper's TIP4P study).
	}

	space := repro.NewLocalSpace(repro.LocalConfig{
		Dim:        2,
		F:          rosenbrock2,
		Sigma0:     repro.ConstSigma(5),
		Seed:       42,
		Parallel:   true,
		Workers:    4, // real goroutine concurrency of each sampling batch
		SampleCost: expensive,
	})
	defer space.Close() // a space with its own pool is closed when done

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel() // cancel() at any time stops the run within one batch

	// A Runner bundles a validated option set for reuse across spaces.
	runner, err := repro.NewRunner(
		repro.WithAlgorithm(repro.PC),
		repro.WithInitialSimplex([][]float64{{-2, 2}, {3, 1}, {0, -2}}),
		repro.WithBudget(1e5),
	)
	if err != nil {
		fmt.Println("options:", err)
		return
	}
	res, err := runner.Run(ctx, space)
	if err != nil {
		fmt.Println("optimize:", err)
		return
	}

	serial := repro.NewLocalSpace(repro.LocalConfig{
		Dim: 2, F: rosenbrock2, Sigma0: repro.ConstSigma(5), Seed: 42,
		Parallel: true, Workers: 1,
	})
	defer serial.Close()
	sres, err := runner.Run(ctx, serial)
	if err != nil {
		fmt.Println("optimize:", err)
		return
	}

	fmt.Printf("terminated: %s\n", res.Termination)
	fmt.Printf("bitwise identical to serial run: %v\n",
		res.BestG == sres.BestG && res.BestX[0] == sres.BestX[0] && res.BestX[1] == sres.BestX[1])
	// Output:
	// terminated: walltime
	// bitwise identical to serial run: true
}

// ExampleNewJobManager runs two optimizations as jobs over one shared
// sampling fleet — the in-process form of the cmd/optd job server. Jobs are
// described by serializable specs (named objective, algorithm, seed), carry
// lifecycle states, and can be canceled or, with a checkpoint directory,
// killed and resumed bitwise-deterministically.
func ExampleNewJobManager() {
	m, err := repro.NewJobManager(repro.JobManagerConfig{MaxConcurrent: 2})
	if err != nil {
		panic(err)
	}
	defer m.Close()

	id, err := m.Submit(repro.JobSpec{
		Objective:     "rosenbrock",
		Dim:           3,
		Algorithm:     "pc",
		Sigma0:        10,
		Seed:          1,
		Tol:           -1, // run to the iteration cap
		Budget:        1e12,
		MaxIterations: 80,
	})
	if err != nil {
		panic(err)
	}
	res, err := m.Wait(id)
	if err != nil {
		panic(err)
	}
	st, _ := m.Get(id)
	fmt.Printf("%s: %s after %d iterations\n", id, st.State, res.Iterations)
	// Output:
	// j000001: done after 80 iterations
}
