package repro

// One benchmark per table and figure of the paper's evaluation chapter.
// Each benchmark executes the corresponding experiment driver at the quick
// protocol scale, so `go test -bench=. -benchmem` regenerates a reduced
// version of every artifact and reports its cost. The full-scale artifacts
// come from `go run ./cmd/experiments -run all`.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
)

func benchDriver(b *testing.B, name string) {
	b.Helper()
	d, err := experiments.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		out, err := d.Run(experiments.Options{Quick: true, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty artifact")
		}
	}
}

func BenchmarkTable31(b *testing.B) { benchDriver(b, "Table3.1") }
func BenchmarkTable32(b *testing.B) { benchDriver(b, "Table3.2") }
func BenchmarkTable33(b *testing.B) { benchDriver(b, "Table3.3") }
func BenchmarkTable34(b *testing.B) { benchDriver(b, "Table3.4") }
func BenchmarkTable35(b *testing.B) { benchDriver(b, "Table3.5") }
func BenchmarkFig33(b *testing.B)   { benchDriver(b, "Fig3.3") }
func BenchmarkFig34(b *testing.B)   { benchDriver(b, "Fig3.4") }
func BenchmarkFig35(b *testing.B)   { benchDriver(b, "Fig3.5") }
func BenchmarkFig36(b *testing.B)   { benchDriver(b, "Fig3.6") }
func BenchmarkFig37(b *testing.B)   { benchDriver(b, "Fig3.7") }
func BenchmarkFig38(b *testing.B)   { benchDriver(b, "Fig3.8") }
func BenchmarkFig39(b *testing.B)   { benchDriver(b, "Fig3.9") }
func BenchmarkFig310(b *testing.B)  { benchDriver(b, "Fig3.10") }
func BenchmarkFig311(b *testing.B)  { benchDriver(b, "Fig3.11") }
func BenchmarkFig312(b *testing.B)  { benchDriver(b, "Fig3.12") }
func BenchmarkFig313(b *testing.B)  { benchDriver(b, "Fig3.13") }
func BenchmarkFig314(b *testing.B)  { benchDriver(b, "Fig3.14") }
func BenchmarkFig315(b *testing.B)  { benchDriver(b, "Fig3.15") }
func BenchmarkFig316(b *testing.B)  { benchDriver(b, "Fig3.16") }
func BenchmarkFig317(b *testing.B)  { benchDriver(b, "Fig3.17") }
func BenchmarkFig318(b *testing.B)  { benchDriver(b, "Fig3.18") }
func BenchmarkFig319(b *testing.B)  { benchDriver(b, "Fig3.19") }
func BenchmarkFig320(b *testing.B)  { benchDriver(b, "Fig3.20") }

// Ablation benchmarks for the design choices DESIGN.md calls out: the cost
// of the stochastic decision machinery itself, per algorithm, on one fixed
// noisy Rosenbrock workload.
func benchAlgorithm(b *testing.B, alg core.Algorithm) {
	b.Helper()
	initial := [][]float64{
		{-3, -3, -3}, {4, -2, 1}, {-1, 3, -2}, {2, 2, 4},
	}
	for i := 0; i < b.N; i++ {
		space := NewLocalSpace(LocalConfig{
			Dim:      3,
			F:        rosen3,
			Sigma0:   ConstSigma(100),
			Seed:     int64(i + 1),
			Parallel: true,
		})
		cfg := DefaultConfig(alg)
		cfg.MaxWalltime = 2e4
		cfg.Tol = 0
		if _, err := Optimize(space, initial, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func rosen3(x []float64) float64 {
	sum := 0.0
	for i := 1; i < len(x); i++ {
		a := 1 - x[i-1]
		c := x[i] - x[i-1]*x[i-1]
		sum += a*a + 100*c*c
	}
	return sum
}

func BenchmarkAlgorithmDET(b *testing.B)      { benchAlgorithm(b, core.DET) }
func BenchmarkAlgorithmMN(b *testing.B)       { benchAlgorithm(b, core.MN) }
func BenchmarkAlgorithmPC(b *testing.B)       { benchAlgorithm(b, core.PC) }
func BenchmarkAlgorithmPCMN(b *testing.B)     { benchAlgorithm(b, core.PCMN) }
func BenchmarkAlgorithmAnderson(b *testing.B) { benchAlgorithm(b, core.AndersonNM) }

// Resample-scope ablation (DESIGN.md §5): all-active vs pair-only sampling
// during indeterminate PC comparisons. The residual achieved within the
// fixed budget is reported alongside the runtime cost.
func benchScope(b *testing.B, scope core.ResampleScope) {
	b.Helper()
	initial := [][]float64{
		{-3, -3, -3}, {4, -2, 1}, {-1, 3, -2}, {2, 2, 4},
	}
	resid := 0.0
	for i := 0; i < b.N; i++ {
		space := NewLocalSpace(LocalConfig{
			Dim:      3,
			F:        rosen3,
			Sigma0:   ConstSigma(100),
			Seed:     int64(i + 1),
			Parallel: true,
		})
		cfg := DefaultConfig(core.PC)
		cfg.Scope = scope
		cfg.MaxWalltime = 2e4
		cfg.Tol = 0
		res, err := Optimize(space, initial, cfg)
		if err != nil {
			b.Fatal(err)
		}
		resid += rosen3(res.BestX)
	}
	b.ReportMetric(resid/float64(b.N), "residual/op")
}

func BenchmarkScopeActive(b *testing.B) { benchScope(b, core.ScopeActive) }
func BenchmarkScopePair(b *testing.B)   { benchScope(b, core.ScopePair) }
