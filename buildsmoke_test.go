package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMainPackagesBuild compiles every example and command main package, so
// example rot (an API change that breaks a program no other test imports) is
// caught by the tier-1 suite rather than by the first user who runs it.
// `go build` with multiple main packages type-checks and compiles without
// writing binaries.
func TestMainPackagesBuild(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go toolchain not in PATH: %v", err)
	}
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}

	// Enumerate so the failure message names the broken package, and so an
	// empty glob (a renamed directory) is itself an error.
	var pkgs []string
	for _, dir := range []string{"examples", "cmd"} {
		entries, err := os.ReadDir(filepath.Join(root, dir))
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, e := range entries {
			if e.IsDir() {
				pkgs = append(pkgs, "./"+dir+"/"+e.Name())
				n++
			}
		}
		if n == 0 {
			t.Fatalf("no main packages found under %s/", dir)
		}
	}

	cmd := exec.Command(goBin, append([]string{"build"}, pkgs...)...)
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s failed: %v\n%s", strings.Join(pkgs, " "), err, out)
	}
}

// moduleRoot locates the directory containing go.mod, starting from the
// test's working directory.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
